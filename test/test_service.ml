(* The routing service (lib/service): protocol, scheduler fairness,
   registry lifecycle, admission control, and the two service-level
   guarantees the acceptance criteria pin:

   - a scripted request trace produces layouts byte-identical to the
     equivalent batch engine run, on every committed instance;
   - a request that trips its budget or hits an injected chaos fault
     returns a structured error and leaves its session state unchanged —
     the qcheck property replays only the committed requests of a
     fault-riddled trace on a clean server and demands identical state.

   Set DESIGN_CHAOS=1 to crank the qcheck iteration counts. *)

let heavy = Sys.getenv_opt "DESIGN_CHAOS" <> None
let count n = if heavy then n * 5 else n
let prng seed = Util.Prng.create seed

module J = Util.Json

let ok_of_reply line =
  match J.of_string line with
  | Ok json -> Option.bind (J.member "ok" json) J.to_bool_opt = Some true
  | Error _ -> false

let error_code_of_reply line =
  match J.of_string line with
  | Ok json ->
      Option.bind (J.member "error" json) (fun e ->
          Option.bind (J.member "code" e) J.to_string_opt)
  | Error _ -> None

let result_of_reply line name =
  match J.of_string line with
  | Ok json -> Option.bind (J.member "result" json) (J.member name)
  | Error _ -> None

let one_reply server line =
  match Service.Server.handle_line server line with
  | [ reply ] -> reply
  | replies ->
      Alcotest.failf "expected one reply to %s, got %d" line
        (List.length replies)

(* --- protocol --- *)

let test_proto_parse_ok () =
  (match Service.Proto.parse {|{"id":7,"op":"route","session":"s","slo_ms":250}|} with
  | Ok { rid; session; op = Service.Proto.Route { slo_ms } } ->
      Testkit.check_int "id" 7 rid;
      Testkit.check_true "session" (session = Some "s");
      Testkit.check_true "slo" (slo_ms = Some 250)
  | Ok _ -> Alcotest.fail "wrong op"
  | Error (_, msg) -> Alcotest.fail msg);
  match
    Service.Proto.parse
      {|{"op":"add_net","session":"s","name":"n1","pins":[[0,1],[2,3,1]]}|}
  with
  | Ok { rid; op = Service.Proto.Add_net { name; pins }; _ } ->
      Testkit.check_int "default id" 0 rid;
      Testkit.check_true "name" (name = "n1");
      Testkit.check_int "pins" 2 (List.length pins);
      Testkit.check_true "layered pin"
        (List.exists (fun (p : Netlist.Net.pin) -> p.Netlist.Net.layer = 1) pins)
  | Ok _ -> Alcotest.fail "wrong op"
  | Error (_, msg) -> Alcotest.fail msg

let test_proto_parse_errors () =
  let expect code line =
    match Service.Proto.parse line with
    | Ok _ -> Alcotest.failf "expected %s for %s" (Service.Proto.code_name code) line
    | Error (c, _) ->
        Testkit.check_true
          (Printf.sprintf "%s -> %s" line (Service.Proto.code_name code))
          (c = code)
  in
  expect Service.Proto.Parse_error "not json at all";
  expect Service.Proto.Parse_error {|{"op":"route"|};
  expect Service.Proto.Unknown_op {|{"op":"frobnicate"}|};
  expect Service.Proto.Bad_request {|{"noop":1}|};
  expect Service.Proto.Bad_request {|{"op":"add_net","session":"s","name":"x"}|};
  expect Service.Proto.Bad_request {|{"op":"rip","session":"s"}|};
  expect Service.Proto.Bad_request
    {|{"op":"open","session":"s","problem":"p","file":"f"}|}

let test_proto_reply_shape () =
  let line =
    Service.Proto.error_line ~rid:3 ~retry_after_ms:120
      Service.Proto.Queue_full "queue full"
  in
  let json = J.of_string_exn line in
  Testkit.check_true "versioned"
    (J.member "v" json = Some (J.Int Service.Proto.version));
  Testkit.check_true "not ok" (J.member "ok" json = Some (J.Bool false));
  let error = Option.get (J.member "error" json) in
  Testkit.check_true "code"
    (J.member "code" error = Some (J.String "queue_full"));
  Testkit.check_true "retry hint"
    (J.member "retry_after_ms" error = Some (J.Int 120));
  let okl = Service.Proto.ok_line ~rid:9 ~gen:4 (J.Obj [ ("x", J.Int 1) ]) in
  let json = J.of_string_exn okl in
  Testkit.check_true "ok" (J.member "ok" json = Some (J.Bool true));
  Testkit.check_true "gen" (J.member "gen" json = Some (J.Int 4));
  Testkit.check_true "id echoed" (J.member "id" json = Some (J.Int 9))

(* --- scheduler --- *)

let test_sched_fifo_and_cap () =
  let q = Service.Sched.create ~cap:3 () in
  Testkit.check_true "a" (Service.Sched.submit q ~key:"s" 1);
  Testkit.check_true "b" (Service.Sched.submit q ~key:"s" 2);
  Testkit.check_true "c" (Service.Sched.submit q ~key:"s" 3);
  Testkit.check_false "full -> shed" (Service.Sched.submit q ~key:"s" 4);
  Testkit.check_int "depth" 3 (Service.Sched.length q);
  Testkit.check_true "fifo 1" (Service.Sched.pop q = Some ("s", 1));
  Testkit.check_true "fifo 2" (Service.Sched.pop q = Some ("s", 2));
  Testkit.check_true "shed left no trace" (Service.Sched.pop q = Some ("s", 3));
  Testkit.check_true "empty" (Service.Sched.pop q = None)

let test_sched_round_robin_fairness () =
  (* A floods 4 requests before B and C submit one each: the drain order
     must still interleave sessions, so B and C wait behind exactly one
     of A's requests, not all four. *)
  let q = Service.Sched.create ~cap:16 () in
  List.iter (fun i -> ignore (Service.Sched.submit q ~key:"a" (10 + i)))
    [ 0; 1; 2; 3 ];
  ignore (Service.Sched.submit q ~key:"b" 20);
  ignore (Service.Sched.submit q ~key:"c" 30);
  let order = List.init 6 (fun _ -> Option.get (Service.Sched.pop q)) in
  Testkit.check_true "fair rotation"
    (order
    = [ ("a", 10); ("b", 20); ("c", 30); ("a", 11); ("a", 12); ("a", 13) ])

(* --- registry --- *)

let small_problem seed =
  Workload.Gen.routable_switchbox (prng seed) ~width:8 ~height:6

let test_registry_cap_and_generations () =
  let r = Service.Registry.create ~max_sessions:2 () in
  let open_ok name seed =
    match Service.Registry.open_session r ~name (small_problem seed) with
    | Ok e -> e
    | Error _ -> Alcotest.failf "open %s failed" name
  in
  let a = open_ok "a" 1 in
  let _b = open_ok "b" 2 in
  (match Service.Registry.open_session r ~name:"c" (small_problem 3) with
  | Error (`Cap 2) -> ()
  | Ok _ | Error _ -> Alcotest.fail "cap must refuse the third session");
  (match Service.Registry.open_session r ~name:"a" (small_problem 4) with
  | Error `Exists -> ()
  | Ok _ | Error _ -> Alcotest.fail "duplicate name must be refused");
  Testkit.check_int "fresh gen" 0 (Service.Registry.generation a);
  Service.Registry.bump a;
  Service.Registry.bump a;
  Testkit.check_int "bumped" 2 (Service.Registry.generation a);
  Testkit.check_true "close" (Service.Registry.close r "b");
  Testkit.check_false "close twice" (Service.Registry.close r "b");
  match Service.Registry.open_session r ~name:"c" (small_problem 3) with
  | Ok _ -> Testkit.check_int "slot freed" 2 (Service.Registry.count r)
  | Error _ -> Alcotest.fail "slot freed by close"

let test_registry_idle_eviction () =
  let r = Service.Registry.create ~idle_ticks:3 () in
  (match Service.Registry.open_session r ~name:"idle" (small_problem 5) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "open failed");
  (match Service.Registry.open_session r ~name:"busy" (small_problem 6) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "open failed");
  let evicted = ref [] in
  for _ = 1 to 6 do
    ignore (Service.Registry.find r "busy");
    evicted := !evicted @ Service.Registry.tick r
  done;
  Testkit.check_true "idle session evicted" (!evicted = [ "idle" ]);
  Testkit.check_true "gone" (Service.Registry.find r "idle" = None);
  Testkit.check_true "busy survives" (Service.Registry.find r "busy" <> None)

(* --- metrics --- *)

let test_metrics_quantiles_and_counters () =
  let m = Service.Metrics.create () in
  for i = 1 to 100 do
    (* 95 fast requests and a 5-wide slow tail: p50/p95 stay small, the
       p99 rank (99 of 100) lands inside the tail's bucket. *)
    let latency_s = if i > 95 then 0.5 else 0.0001 in
    Service.Metrics.record m ~kind:"route" ~ok:(i mod 10 <> 0) ~latency_s
  done;
  Service.Metrics.shed m;
  Service.Metrics.shed m;
  Service.Metrics.budget_trip m;
  Service.Metrics.note_queue_depth m 7;
  let s = Service.Metrics.snapshot ~queue_depth:1 ~sessions:2 m in
  let get path =
    match
      List.fold_left (fun acc k -> Option.bind acc (J.member k)) (Some s) path
    with
    | Some v -> v
    | None -> Alcotest.failf "missing %s" (String.concat "." path)
  in
  Testkit.check_true "requests" (get [ "requests" ] = J.Int 100);
  Testkit.check_true "errors" (get [ "errors" ] = J.Int 10);
  Testkit.check_true "shed" (get [ "shed" ] = J.Int 2);
  Testkit.check_true "trips" (get [ "budget_trips" ] = J.Int 1);
  Testkit.check_true "hwm" (get [ "max_queue_depth" ] = J.Int 7);
  let q name = Option.get (J.to_float_opt (get [ "by_kind"; "route"; name ])) in
  Testkit.check_true "p50 under 1ms" (q "p50_ms" <= 1.0);
  Testkit.check_true "p99 sees the outlier" (q "p99_ms" >= 100.0);
  Testkit.check_true "monotone" (q "p50_ms" <= q "p95_ms" && q "p95_ms" <= q "p99_ms")

(* --- server: trace equivalence with the batch engine --- *)

let fast_config =
  {
    Router.Config.default with
    Router.Config.use_astar = true;
    kernel = Maze.Search.Buckets;
    window_margin = Some 4;
  }

let server ?(config = fast_config) ?(chaos = Router.Chaos.none)
    ?(queue_cap = 64) ?default_slo_ms ?(shards = 1) () =
  Service.Server.create
    ~config:
      {
        Service.Server.default_config with
        Service.Server.router = config;
        chaos;
        queue_cap;
        default_slo_ms;
        shards;
      }
    ()

let open_line ~session problem =
  J.to_string
    (J.Obj
       [
         ("op", J.String "open");
         ("session", J.String session);
         ("problem", J.String (Netlist.Parse.to_string problem));
       ])

let session_of server name =
  match Service.Registry.find (Service.Server.registry server) name with
  | Some e -> Service.Registry.session e
  | None -> Alcotest.failf "session %s disappeared" name

let load_instance name =
  (* cwd is test/ under [dune runtest], the project root under [dune exec] *)
  let file = name ^ ".problem" in
  let candidates =
    [ Filename.concat "../instances" file; Filename.concat "instances" file ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> Netlist.Parse.load_exn path
  | None -> Alcotest.failf "instance %s not found" file

(* The acceptance criterion: open → route → verify over the service must
   give the byte-identical layout and the same DRC verdict as the batch
   engine call it wraps, on every committed instance. *)
let check_trace_equivalence name =
  let problem = load_instance name in
  let batch = Router.Engine.route ~config:fast_config problem in
  let batch_ascii = Viz.Ascii.render batch.Router.Engine.grid in
  let batch_clean = Drc.Check.check problem batch.Router.Engine.grid = [] in
  let s = server () in
  let reply line =
    let r = one_reply s line in
    Testkit.check_true (name ^ ": ok reply to " ^ line) (ok_of_reply r);
    r
  in
  ignore (reply (open_line ~session:"t" problem));
  ignore (reply {|{"op":"route","session":"t"}|});
  let render = reply {|{"op":"render","session":"t"}|} in
  let service_ascii =
    match Option.bind (result_of_reply render "ascii") J.to_string_opt with
    | Some a -> a
    | None -> Alcotest.fail "render reply carries no ascii"
  in
  Testkit.check_true (name ^ ": byte-identical layout")
    (String.equal batch_ascii service_ascii);
  Testkit.check_true (name ^ ": grid equal")
    (Grid.equal batch.Router.Engine.grid
       (Router.Session.grid (session_of s "t")));
  let verify = reply {|{"op":"verify","session":"t"}|} in
  let service_clean =
    Option.bind (result_of_reply verify "clean") J.to_bool_opt = Some true
  in
  Testkit.check_true (name ^ ": same DRC verdict")
    (Bool.equal batch_clean service_clean)

let test_trace_equivalence_small () =
  List.iter check_trace_equivalence
    [ "switchbox_12x10"; "switchbox_32x26"; "chip_128x96" ]

let test_trace_equivalence_large () =
  List.iter check_trace_equivalence
    [ "switchbox_64x52"; "switchbox_128x104"; "chip_96x64" ]

(* --- server: admission control --- *)

let test_shed_with_retry_after () =
  let s = server ~queue_cap:2 () in
  (* Mutating requests count against the cap (read-only ones bypass it —
     see [test_read_only_bypasses_cap]). *)
  let line n = Printf.sprintf {|{"id":%d,"op":"route","session":"s"}|} n in
  Testkit.check_true "1 admitted" (Service.Server.submit s ~client:0 (line 1) = None);
  Testkit.check_true "2 admitted" (Service.Server.submit s ~client:0 (line 2) = None);
  (match Service.Server.submit s ~client:0 (line 3) with
  | None -> Alcotest.fail "third request must be shed"
  | Some reply ->
      Testkit.check_true "queue_full code"
        (error_code_of_reply reply = Some "queue_full");
      let retry =
        Option.bind (J.of_string reply |> Result.to_option) (fun j ->
            Option.bind (J.member "error" j) (fun e ->
                Option.bind (J.member "retry_after_ms" e) J.to_int_opt))
      in
      Testkit.check_true "positive retry_after_ms"
        (match retry with Some ms -> ms > 0 | None -> false));
  (* Drain; the shed count must be visible in the next stats snapshot. *)
  let rec drain () =
    match Service.Server.drain_one s with Some _ -> drain () | None -> ()
  in
  drain ();
  let stats = one_reply s {|{"op":"stats"}|} in
  let shed =
    Option.bind (result_of_reply stats "metrics") (fun m ->
        Option.bind (J.member "shed" m) J.to_int_opt)
  in
  Testkit.check_true "shed count surfaces in stats" (shed = Some 1);
  Testkit.check_int "metrics agree" 1
    (Service.Metrics.shed_count (Service.Server.metrics s))

(* Read-only requests ([analyze], [stats], [verify], …) bypass the
   queue-cap accounting: a shard saturated with mutations must still
   admit and answer them. *)
let test_read_only_bypasses_cap () =
  let s = server ~queue_cap:1 () in
  let problem =
    Workload.Gen.routable_switchbox (prng 5) ~width:12 ~height:10
  in
  Testkit.check_true "open ok"
    (ok_of_reply (one_reply s (open_line ~session:"ro" problem)));
  (* Saturate: one route fills the cap, the second is shed. *)
  Testkit.check_true "mutation admitted"
    (Service.Server.submit s ~client:0 {|{"id":1,"op":"route","session":"ro"}|}
     = None);
  (match
     Service.Server.submit s ~client:0 {|{"id":2,"op":"route","session":"ro"}|}
   with
  | None -> Alcotest.fail "second mutation must be shed at cap 1"
  | Some reply ->
      Testkit.check_true "queue_full"
        (error_code_of_reply reply = Some "queue_full"));
  (* The saturated shard still admits read-only triage probes. *)
  List.iter
    (fun line ->
      Testkit.check_true ("force-admitted: " ^ line)
        (Service.Server.submit s ~client:0 line = None))
    [
      {|{"id":3,"op":"analyze","session":"ro"}|};
      {|{"id":4,"op":"stats"}|};
      {|{"id":5,"op":"verify","session":"ro"}|};
    ];
  (* Drain: every admitted request answers; the analyze reply carries a
     verdict. *)
  let replies = ref [] in
  let rec drain () =
    match Service.Server.drain_one s with
    | Some (_, r) ->
        replies := r :: !replies;
        drain ()
    | None -> ()
  in
  drain ();
  let analyze_reply =
    List.find_opt
      (fun r ->
        match J.of_string r with
        | Ok j -> Option.bind (J.member "id" j) J.to_int_opt = Some 3
        | Error _ -> false)
      !replies
  in
  match analyze_reply with
  | None -> Alcotest.fail "analyze reply missing after drain"
  | Some r ->
      Testkit.check_true "analyze ok" (ok_of_reply r);
      Testkit.check_true "has score"
        (match result_of_reply r "score" with
        | Some (J.Float _ | J.Int _) -> true
        | _ -> false)

(* --- server: budget trips and chaos faults leave sessions unchanged --- *)

let test_budget_trip_rolls_back () =
  let s = server () in
  let problem =
    Workload.Gen.routable_switchbox (prng 11) ~width:16 ~height:12
  in
  Testkit.check_true "open ok"
    (ok_of_reply (one_reply s (open_line ~session:"b" problem)));
  let before = Grid.copy (Router.Session.grid (session_of s "b")) in
  (* slo_ms 0: the deadline has already passed when routing starts, so
     the request must trip, roll back and answer budget_tripped. *)
  let reply = one_reply s {|{"op":"route","session":"b","slo_ms":0}|} in
  Testkit.check_true "budget_tripped code"
    (error_code_of_reply reply = Some "budget_tripped");
  Testkit.check_true "session unchanged"
    (Grid.equal before (Router.Session.grid (session_of s "b")));
  (* The same session still routes fine without the impossible SLO. *)
  let reply = one_reply s {|{"op":"route","session":"b"}|} in
  Testkit.check_true "recovers" (ok_of_reply reply);
  let stats = one_reply s {|{"op":"stats"}|} in
  let trips =
    Option.bind (result_of_reply stats "metrics") (fun m ->
        Option.bind (J.member "budget_trips" m) J.to_int_opt)
  in
  Testkit.check_true "trip counted" (trips = Some 1)

let test_chaos_fault_rolls_back () =
  let chaos = Router.Chaos.create ~crash:1.0 ~seed:3 () in
  let s = server ~chaos () in
  let problem = small_problem 21 in
  Testkit.check_true "open ok"
    (ok_of_reply (one_reply s (open_line ~session:"c" problem)));
  let before = Grid.copy (Router.Session.grid (session_of s "c")) in
  let reply = one_reply s {|{"op":"rip","session":"c","net":1}|} in
  Testkit.check_true "fault_injected code"
    (error_code_of_reply reply = Some "fault_injected");
  Testkit.check_true "session unchanged"
    (Grid.equal before (Router.Session.grid (session_of s "c")));
  Testkit.check_true "fault counted"
    (Option.bind
       (result_of_reply (one_reply s {|{"op":"stats"}|}) "metrics")
       (fun m -> Option.bind (J.member "faults" m) J.to_int_opt)
    = Some 1)

(* --- the qcheck property (satellite): committed-requests replay --- *)

(* Drive a fault-riddled trace (spurious budget trips + injected crashes
   + a tight expansion budget; NO forced search failures, which would
   make committed results chaos-dependent) against server A.  Every
   reply is structured: ok means the request committed, an error means
   the session rolled back.  Replaying exactly the committed mutations
   on a chaos-free server B must reproduce every session byte for
   byte — problem text and grid. *)

let trace_line rng i session =
  match Util.Prng.int rng 10 with
  | 0 | 1 ->
      let x () = Util.Prng.int rng 10 and y () = Util.Prng.int rng 8 in
      Printf.sprintf
        {|{"op":"add_net","session":"%s","name":"t%d","pins":[[%d,%d],[%d,%d]]}|}
        session i (x ()) (y ()) (x ()) (y ())
  | 2 | 3 ->
      Printf.sprintf {|{"op":"rip","session":"%s","net":%d}|} session
        (1 + Util.Prng.int rng 6)
  | 4 ->
      Printf.sprintf {|{"op":"remove_net","session":"%s","net":%d}|} session
        (1 + Util.Prng.int rng 6)
  | 5 ->
      Printf.sprintf {|{"op":"freeze","session":"%s","net":%d}|} session
        (1 + Util.Prng.int rng 6)
  | 6 ->
      Printf.sprintf {|{"op":"thaw","session":"%s","net":%d}|} session
        (1 + Util.Prng.int rng 6)
  | 7 ->
      Printf.sprintf {|{"op":"refine","session":"%s"}|} session
  | _ -> Printf.sprintf {|{"op":"route","session":"%s"}|} session

let replay_config =
  { fast_config with Router.Config.max_expanded = Some 2_000 }

let sessions = [ "a"; "b" ]

let prop_committed_replay =
  Testkit.qcheck ~count:(count 20)
    "fault-riddled trace == replay of its committed requests"
    QCheck2.Gen.(
      pair (int_range 0 100_000) (list_size (int_range 1 14) (int_range 0 999)))
    (fun (seed, codes) ->
      let chaos = Router.Chaos.create ~trip:0.05 ~crash:0.25 ~seed () in
      let a = server ~config:replay_config ~chaos () in
      let b = server ~config:replay_config () in
      let rng = prng (seed lxor 0x7E57) in
      let committed = ref [] in
      (* open both sessions on both servers — opens never fault (no
         chaos decision point), so they are always part of the replay *)
      List.iteri
        (fun i name ->
          let problem =
            Workload.Gen.switchbox (prng (seed + i)) ~width:10 ~height:8
              ~nets:4
          in
          let line = open_line ~session:name problem in
          if not (ok_of_reply (one_reply a line)) then
            Alcotest.failf "open %s failed on the chaos server" name;
          if not (ok_of_reply (one_reply b line)) then
            Alcotest.failf "open %s failed on the replay server" name)
        sessions;
      List.iteri
        (fun i code ->
          let session = List.nth sessions (code mod List.length sessions) in
          let line = trace_line rng i session in
          if ok_of_reply (one_reply a line) then
            committed := line :: !committed)
        codes;
      List.iter
        (fun line ->
          if not (ok_of_reply (one_reply b line)) then
            Alcotest.failf
              "committed request failed on the replay server: %s" line)
        (List.rev !committed);
      List.for_all
        (fun name ->
          let sa = session_of a name and sb = session_of b name in
          Grid.equal (Router.Session.grid sa) (Router.Session.grid sb)
          && String.equal
               (Netlist.Parse.to_string (Router.Session.problem sa))
               (Netlist.Parse.to_string (Router.Session.problem sb))
          && Router.Session.verify sa = [])
        sessions)

(* --- sharding: merge exactness, shard-count invariance, real domains --- *)

(* Per-domain metrics stores merged with {!Service.Metrics.merge} must be
   indistinguishable from one global store fed the same samples: every
   counter, histogram count and quantile — pinned by comparing the full
   snapshot JSON byte for byte. *)
let prop_metrics_merge =
  Testkit.qcheck ~count:(count 50)
    "merged per-domain histograms == one global store"
    QCheck2.Gen.(
      pair (int_range 1 8)
        (list_size (int_range 0 200)
           (triple (int_range 0 4) bool (int_range 0 400_000))))
    (fun (parts, samples) ->
      let kinds = [ "route"; "add_net"; "rip"; "stats"; "refine" ] in
      let global = Service.Metrics.create ~kinds () in
      let stores = Array.init parts (fun _ -> Service.Metrics.create ~kinds ()) in
      List.iteri
        (fun i (k, ok, us) ->
          let part = stores.(i mod parts) in
          let kind = List.nth kinds k in
          let latency_s = float_of_int us /. 1e6 in
          Service.Metrics.record global ~kind ~ok ~latency_s;
          Service.Metrics.record part ~kind ~ok ~latency_s;
          if us mod 7 = 0 then begin
            Service.Metrics.shed global;
            Service.Metrics.shed part
          end;
          Service.Metrics.note_queue_depth global (us mod 13);
          Service.Metrics.note_queue_depth part (us mod 13))
        samples;
      let merged = Service.Metrics.merge (Array.to_list stores) in
      String.equal
        (J.to_string (Service.Metrics.snapshot global))
        (J.to_string (Service.Metrics.snapshot merged)))

(* A trace touching several sessions, submitted as a burst and drained in
   whatever order the shard rotation produces.  Each line is tagged with
   a unique id, so sorting the reply lines recovers a canonical transcript
   regardless of cross-session interleaving. *)
let shard_trace_sessions = [ "alpha"; "bravo"; "charlie"; "delta" ]

let shard_trace () =
  List.concat
    (List.mapi
       (fun i name ->
         let problem =
           Workload.Gen.switchbox (prng (100 + i)) ~width:10 ~height:8 ~nets:4
         in
         [
           J.to_string
             (J.Obj
                [
                  ("id", J.Int (1 + (10 * i)));
                  ("op", J.String "open");
                  ("session", J.String name);
                  ("problem", J.String (Netlist.Parse.to_string problem));
                ]);
           Printf.sprintf
             {|{"id":%d,"op":"add_net","session":"%s","name":"x","pins":[[1,2],[7,5]]}|}
             (2 + (10 * i)) name;
           Printf.sprintf {|{"id":%d,"op":"route","session":"%s"}|}
             (3 + (10 * i)) name;
           Printf.sprintf {|{"id":%d,"op":"refine","session":"%s"}|}
             (4 + (10 * i)) name;
         ])
       shard_trace_sessions)

(* Run the burst on the synchronous engine: submit everything, drain
   everything, then render each session.  Returns the sorted reply
   transcript and the per-session layouts. *)
let run_sync_trace ~shards =
  let s = server ~queue_cap:128 ~shards () in
  let replies = ref [] in
  List.iter
    (fun line ->
      match Service.Server.submit s ~client:0 line with
      | None -> ()
      | Some r -> Alcotest.failf "unexpected immediate reply %s" r)
    (shard_trace ());
  let rec drain () =
    match Service.Server.drain_one s with
    | Some (_, r) ->
        replies := r :: !replies;
        drain ()
    | None -> ()
  in
  drain ();
  let layouts =
    List.map
      (fun name ->
        let r =
          one_reply s
            (Printf.sprintf {|{"op":"render","session":"%s"}|} name)
        in
        match Option.bind (result_of_reply r "ascii") J.to_string_opt with
        | Some a -> (name, a)
        | None -> Alcotest.failf "no ascii for %s" name)
      shard_trace_sessions
  in
  (List.sort String.compare !replies, layouts)

let test_shard_count_invariance () =
  let base_replies, base_layouts = run_sync_trace ~shards:1 in
  List.iter
    (fun shards ->
      let replies, layouts = run_sync_trace ~shards in
      Testkit.check_true
        (Printf.sprintf "identical transcript at %d shards" shards)
        (replies = base_replies);
      List.iter2
        (fun (name, a) (_, b) ->
          Testkit.check_true
            (Printf.sprintf "%s layout byte-identical at %d shards" name
               shards)
            (String.equal a b))
        layouts base_layouts)
    [ 2; 4; 8 ]

(* The same burst through real persistent worker domains: every reply
   and every layout must match the single-shard synchronous run. *)
let test_parallel_workers_equivalence () =
  let base_replies, base_layouts = run_sync_trace ~shards:1 in
  let s = server ~queue_cap:128 ~shards:4 () in
  let replies = ref [] in
  let m = Mutex.create () in
  let emit _client reply =
    Mutex.lock m;
    replies := reply :: !replies;
    Mutex.unlock m
  in
  let w = Service.Server.start_workers s ~emit in
  List.iter
    (fun line ->
      match Service.Server.submit s ~client:0 line with
      | None -> ()
      | Some r -> Alcotest.failf "unexpected immediate reply %s" r)
    (shard_trace ());
  Service.Server.quiesce s;
  Service.Server.stop_workers s w;
  Testkit.check_true "all replies emitted"
    (List.length !replies = List.length base_replies);
  Testkit.check_true "identical transcript under worker domains"
    (List.sort String.compare !replies = base_replies);
  List.iter
    (fun (name, expected) ->
      let r =
        one_reply s (Printf.sprintf {|{"op":"render","session":"%s"}|} name)
      in
      let got = Option.bind (result_of_reply r "ascii") J.to_string_opt in
      Testkit.check_true
        (Printf.sprintf "%s layout byte-identical under worker domains" name)
        (got = Some expected))
    base_layouts

(* The per-shard rows of the stats reply (satellite): every shard
   reports its queue gauge and shed counter, and a session's requests
   land on the shard {!Service.Server.shard_of} names. *)
let test_per_shard_stats_fields () =
  let s = server ~shards:4 () in
  List.iter
    (fun line -> ignore (one_reply s line))
    (shard_trace ());
  let stats = one_reply s {|{"op":"stats"}|} in
  let rows =
    match result_of_reply stats "shards" with
    | Some (J.List rows) -> rows
    | _ -> Alcotest.fail "stats reply carries no shards array"
  in
  Testkit.check_int "one row per shard" 4 (List.length rows);
  let int_field row name =
    match Option.bind (J.member name row) J.to_int_opt with
    | Some n -> n
    | None -> Alcotest.failf "shard row misses %s" name
  in
  List.iteri
    (fun i row ->
      Testkit.check_int "indexed in order" i (int_field row "shard");
      Testkit.check_int "drained queue" 0 (int_field row "queue_depth");
      Testkit.check_true "cap is the per-shard slice"
        (int_field row "queue_cap" = 16))
    rows;
  let sessions_by_shard =
    List.map (fun row -> int_field row "sessions") rows
  in
  List.iter
    (fun name ->
      let shard = Service.Server.shard_of s name in
      Testkit.check_true
        (Printf.sprintf "%s counted on shard %d" name shard)
        (List.nth sessions_by_shard shard > 0);
      Testkit.check_true "registry_for finds the session"
        (Service.Registry.find (Service.Server.registry_for s name) name
        <> None))
    shard_trace_sessions;
  let total_requests =
    List.fold_left (fun a row -> a + int_field row "requests") 0 rows
  in
  (* Compare against the merged metrics of the same reply — both were
     computed inside the one stats execution. *)
  let merged_requests =
    Option.bind (result_of_reply stats "metrics") (fun m ->
        Option.bind (J.member "requests" m) J.to_int_opt)
  in
  Testkit.check_true "per-shard requests sum to the merged total"
    (Some total_requests = merged_requests)

(* --- misc server behaviour --- *)

let test_unknown_session_and_close () =
  let s = server () in
  let r = one_reply s {|{"op":"route","session":"ghost"}|} in
  Testkit.check_true "unknown_session"
    (error_code_of_reply r = Some "unknown_session");
  let r = one_reply s {|{"op":"close","session":"ghost"}|} in
  Testkit.check_true "close unknown"
    (error_code_of_reply r = Some "unknown_session")

let test_session_cap_reply () =
  let s =
    Service.Server.create
      ~config:
        {
          Service.Server.default_config with
          Service.Server.router = fast_config;
          max_sessions = 1;
        }
      ()
  in
  Testkit.check_true "first open"
    (ok_of_reply (one_reply s (open_line ~session:"one" (small_problem 1))));
  let r = one_reply s (open_line ~session:"two" (small_problem 2)) in
  Testkit.check_true "session_cap"
    (error_code_of_reply r = Some "session_cap");
  let r = one_reply s (open_line ~session:"one" (small_problem 3)) in
  Testkit.check_true "session_exists"
    (error_code_of_reply r = Some "session_exists")

let test_shutdown_refuses_new_requests () =
  let s = server () in
  Testkit.check_true "shutdown ok"
    (ok_of_reply (one_reply s {|{"op":"shutdown"}|}));
  Testkit.check_true "flag" (Service.Server.shutdown_requested s);
  match Service.Server.submit s ~client:0 {|{"op":"stats"}|} with
  | Some reply ->
      Testkit.check_true "shutting_down"
        (error_code_of_reply reply = Some "shutting_down")
  | None -> Alcotest.fail "requests after shutdown must be refused"

let test_generation_counts_commits () =
  let s = server () in
  let problem = Workload.Gen.routable_switchbox (prng 31) ~width:10 ~height:8 in
  ignore (one_reply s (open_line ~session:"g" problem));
  let gen_of reply =
    match J.of_string reply with
    | Ok j -> Option.bind (J.member "gen" j) J.to_int_opt
    | Error _ -> None
  in
  let r1 = one_reply s {|{"op":"route","session":"g"}|} in
  Testkit.check_true "gen 1 after route" (gen_of r1 = Some 1);
  let r2 = one_reply s {|{"op":"rip","session":"g","net":1}|} in
  Testkit.check_true "gen 2 after rip" (gen_of r2 = Some 2);
  (* A failed mutation must not advance the generation. *)
  let r3 = one_reply s {|{"op":"rip","session":"g","net":999}|} in
  Testkit.check_true "error reply" (not (ok_of_reply r3));
  let r4 = one_reply s {|{"op":"verify","session":"g"}|} in
  Testkit.check_true "gen unchanged by failure/read" (gen_of r4 = Some 2)

(* The mini-flow protocol ops: place mutates the placement section,
   groute is a read-only stats query, flow installs the routed layout —
   and the installed grid equals a direct Flow.run on the same problem. *)
let test_flow_ops () =
  let problem = load_instance "macro_48x40" in
  let s = server () in
  ignore (one_reply s (open_line ~session:"f" problem));
  (* groute before placement must refuse, not crash. *)
  let r = one_reply s {|{"op":"groute","session":"f"}|} in
  Testkit.check_true "groute before place refused"
    (error_code_of_reply r = Some "net_error");
  let r = one_reply s {|{"op":"place","session":"f","seed":7}|} in
  Testkit.check_true "place ok" (ok_of_reply r);
  Testkit.check_true "place reports free insts"
    (Option.bind (result_of_reply r "free_insts") J.to_int_opt = Some 3);
  (* place realized the section: a second place has nothing to do. *)
  let r = one_reply s {|{"op":"place","session":"f"}|} in
  Testkit.check_true "re-place refused (no placement section left)"
    (not (ok_of_reply r));
  let r = one_reply s {|{"op":"groute","session":"f"}|} in
  Testkit.check_true "groute ok after place" (ok_of_reply r);
  (* Audit verdict depends on the placement; here only the reply shape is
     pinned (cleanliness on the default seed is pinned in test_flow.ml). *)
  Testkit.check_true "groute reports an audit verdict"
    (Option.bind (result_of_reply r "audit") J.to_bool_opt <> None);
  Testkit.check_true "groute reports tile counts"
    (match Option.bind (result_of_reply r "overflow_tiles") J.to_int_opt with
    | Some n -> n >= 0
    | None -> false);
  (* flow on a fresh session: one request, routed layout installed. *)
  ignore (one_reply s (open_line ~session:"g" problem));
  let r = one_reply s {|{"op":"flow","session":"g","seed":7}|} in
  Testkit.check_true "flow ok" (ok_of_reply r);
  let hit_rate =
    Option.bind (result_of_reply r "guide") (fun g ->
        Option.bind (J.member "hit_rate" g) J.to_float_opt)
  in
  Testkit.check_true "flow reports a guide hit rate"
    (match hit_rate with Some h -> h >= 0.0 && h <= 1.0 | None -> false);
  let verify = one_reply s {|{"op":"verify","session":"g"}|} in
  Testkit.check_true "flow layout verifies clean"
    (Option.bind (result_of_reply verify "clean") J.to_bool_opt = Some true);
  (* The service flow equals the library flow, byte for byte. *)
  let direct =
    match Flow.run ~config:fast_config ~seed:7 problem with
    | Ok f -> f
    | Error msg -> Alcotest.failf "direct flow failed: %s" msg
  in
  Testkit.check_true "service flow grid = library flow grid"
    (Grid.equal
       direct.Flow.result.Router.Engine.grid
       (Router.Session.grid (session_of s "g")))

let () =
  Alcotest.run "service"
    [
      ( "proto",
        [
          Alcotest.test_case "parse ok" `Quick test_proto_parse_ok;
          Alcotest.test_case "parse errors" `Quick test_proto_parse_errors;
          Alcotest.test_case "reply shape" `Quick test_proto_reply_shape;
        ] );
      ( "sched",
        [
          Alcotest.test_case "fifo and cap" `Quick test_sched_fifo_and_cap;
          Alcotest.test_case "round-robin fairness" `Quick
            test_sched_round_robin_fairness;
        ] );
      ( "registry",
        [
          Alcotest.test_case "cap and generations" `Quick
            test_registry_cap_and_generations;
          Alcotest.test_case "idle eviction" `Quick test_registry_idle_eviction;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "quantiles and counters" `Quick
            test_metrics_quantiles_and_counters;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "committed instances (small)" `Quick
            test_trace_equivalence_small;
          Alcotest.test_case "committed instances (large)" `Slow
            test_trace_equivalence_large;
        ] );
      ( "admission",
        [
          Alcotest.test_case "shed with retry_after" `Quick
            test_shed_with_retry_after;
          Alcotest.test_case "read-only bypasses queue cap" `Quick
            test_read_only_bypasses_cap;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "budget trip rolls back" `Quick
            test_budget_trip_rolls_back;
          Alcotest.test_case "chaos fault rolls back" `Quick
            test_chaos_fault_rolls_back;
          prop_committed_replay;
        ] );
      ( "sharding",
        [
          prop_metrics_merge;
          Alcotest.test_case "shard-count invariance" `Quick
            test_shard_count_invariance;
          Alcotest.test_case "worker-domain equivalence" `Quick
            test_parallel_workers_equivalence;
          Alcotest.test_case "per-shard stats fields" `Quick
            test_per_shard_stats_fields;
        ] );
      ( "server",
        [
          Alcotest.test_case "unknown session" `Quick
            test_unknown_session_and_close;
          Alcotest.test_case "session cap" `Quick test_session_cap_reply;
          Alcotest.test_case "shutdown refuses" `Quick
            test_shutdown_refuses_new_requests;
          Alcotest.test_case "generation counts commits" `Quick
            test_generation_counts_commits;
        ] );
      ("flow", [ Alcotest.test_case "place/groute/flow ops" `Quick test_flow_ops ]);
    ]
