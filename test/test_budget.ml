(* Budgets: unit behavior of Budget.t, engine degradation semantics, and
   the budget qcheck property (bounded effort, DRC-clean partials). *)

let prng seed = Util.Prng.create seed

(* --- Budget unit tests --- *)

let test_unlimited () =
  let b = Router.Budget.unlimited () in
  Testkit.check_true "is unlimited" (Router.Budget.is_unlimited b);
  Testkit.check_true "no stop hook" (Router.Budget.stop_hook b = None);
  Router.Budget.note_search b;
  Router.Budget.note_expanded b 1_000_000;
  Testkit.check_true "never trips" (Router.Budget.check b = None);
  Testkit.check_true "not tripped" (Router.Budget.tripped b = None)

let test_search_limit () =
  let b = Router.Budget.create ~max_searches:2 () in
  Testkit.check_false "not unlimited" (Router.Budget.is_unlimited b);
  Router.Budget.note_search b;
  Router.Budget.note_search b;
  Testkit.check_true "within limit" (Router.Budget.check b = None);
  Router.Budget.note_search b;
  Testkit.check_true "trips past limit"
    (Router.Budget.check b = Some Router.Budget.Search_limit);
  Testkit.check_true "latched"
    (Router.Budget.tripped b = Some Router.Budget.Search_limit)

let test_expansion_limit () =
  let b = Router.Budget.create ~max_expanded:100 () in
  Router.Budget.note_expanded b 90;
  Testkit.check_true "within limit" (Router.Budget.check b = None);
  Testkit.check_true "in-flight counts"
    (Router.Budget.check ~in_flight:11 b
    = Some Router.Budget.Expansion_limit);
  (* The trip latches even though the committed count alone is legal. *)
  Testkit.check_true "latched"
    (Router.Budget.check b = Some Router.Budget.Expansion_limit);
  let stop = Option.get (Router.Budget.stop_hook b) in
  Testkit.check_true "stop hook agrees" (stop 0)

let test_deadline_zero () =
  let b = Router.Budget.create ~deadline:0.0 () in
  Testkit.check_true "expired immediately"
    (Router.Budget.check b = Some Router.Budget.Deadline)

let test_hook_and_trip () =
  let fire = ref false in
  let b =
    Router.Budget.create
      ~hook:(fun () ->
        if !fire then Some (Router.Budget.Cancelled "external") else None)
      ()
  in
  Testkit.check_true "hook silent" (Router.Budget.check b = None);
  fire := true;
  (match Router.Budget.check b with
  | Some (Router.Budget.Cancelled "external") -> ()
  | _ -> Alcotest.fail "expected the hook's cancellation");
  (* First reason wins over later manual trips. *)
  Router.Budget.trip b Router.Budget.Deadline;
  match Router.Budget.tripped b with
  | Some (Router.Budget.Cancelled _) -> ()
  | _ -> Alcotest.fail "latched reason must not change"

let test_add_hook_composes () =
  let b = Router.Budget.unlimited () in
  Router.Budget.add_hook b (fun () -> None);
  Router.Budget.add_hook b (fun () ->
      Some (Router.Budget.Cancelled "second"));
  Testkit.check_false "hook makes it limited" (Router.Budget.is_unlimited b);
  match Router.Budget.check b with
  | Some (Router.Budget.Cancelled "second") -> ()
  | _ -> Alcotest.fail "composed hook must fire"

(* --- engine degradation --- *)

let test_engine_deadline_zero () =
  let p = Workload.Gen.routable_switchbox (prng 7) ~width:14 ~height:12 in
  let config = { Router.Config.default with deadline = Some 0.0 } in
  let result = Router.Engine.route ~config p in
  Testkit.check_false "not completed" result.Router.Engine.completed;
  (match result.Router.Engine.status with
  | Router.Outcome.Degraded Router.Budget.Deadline -> ()
  | s ->
      Alcotest.failf "expected Degraded Deadline, got %s"
        (Router.Outcome.status_name s));
  Testkit.check_int "nothing routed" 0
    result.Router.Engine.stats.Router.Engine.routed_nets;
  Testkit.check_true "partial layout is DRC-clean"
    (Testkit.drc_routed p result = [])

let test_engine_search_limit () =
  let p = Workload.Gen.routable_switchbox (prng 11) ~width:14 ~height:12 in
  let budget = Router.Budget.create ~max_searches:3 () in
  let result = Router.Engine.route ~budget p in
  Testkit.check_false "not completed" result.Router.Engine.completed;
  (match result.Router.Engine.status with
  | Router.Outcome.Degraded Router.Budget.Search_limit -> ()
  | s ->
      Alcotest.failf "expected Degraded Search_limit, got %s"
        (Router.Outcome.status_name s));
  Testkit.check_true "search count respected"
    (Router.Budget.searches budget <= 4);
  Testkit.check_true "some nets routed"
    (result.Router.Engine.stats.Router.Engine.routed_nets > 0);
  Testkit.check_true "partial layout is DRC-clean"
    (Testkit.drc_routed p result = [])

let test_engine_expansion_limit () =
  let p = Workload.Gen.routable_switchbox (prng 23) ~width:16 ~height:12 in
  let budget = Router.Budget.create ~max_expanded:400 () in
  let result = Router.Engine.route ~budget p in
  Testkit.check_false "not completed" result.Router.Engine.completed;
  (match result.Router.Engine.status with
  | Router.Outcome.Degraded Router.Budget.Expansion_limit -> ()
  | s ->
      Alcotest.failf "expected Degraded Expansion_limit, got %s"
        (Router.Outcome.status_name s));
  Testkit.check_true "expansion ledger near the cap"
    (Router.Budget.expanded budget <= 400 + 256);
  Testkit.check_true "partial layout is DRC-clean"
    (Testkit.drc_routed p result = [])

let test_engine_unlimited_budget_is_identity () =
  let p = Workload.Gen.routable_switchbox (prng 3) ~width:12 ~height:10 in
  let plain = Router.Engine.route p in
  let budgeted = Router.Engine.route ~budget:(Router.Budget.unlimited ()) p in
  Testkit.check_true "same stats"
    (plain.Router.Engine.stats = budgeted.Router.Engine.stats);
  Testkit.check_true "same grid"
    (Grid.equal plain.Router.Engine.grid budgeted.Router.Engine.grid);
  Testkit.check_true "complete status"
    (budgeted.Router.Engine.status = Router.Outcome.Complete)

let test_engine_budget_shared_across_restarts () =
  (* A hard instance with restarts enabled still respects one global
     search budget across all attempts. *)
  let p = Workload.Hard.tiny_blocked () in
  let config = { Router.Config.default with restarts = 4 } in
  let budget = Router.Budget.create ~max_searches:5 () in
  let result = Router.Engine.route ~config ~budget p in
  Testkit.check_true "bounded searches across attempts"
    (Router.Budget.searches budget <= 6);
  Testkit.check_true "attempts cut short"
    (result.Router.Engine.stats.Router.Engine.attempts <= 4)

let test_describe_mentions_budgets () =
  Testkit.check_true "default describe unchanged"
    (Router.Config.describe Router.Config.default
    = Router.Config.describe
        { Router.Config.default with deadline = None });
  let c =
    {
      Router.Config.default with
      deadline = Some 0.5;
      max_expanded = Some 1000;
      audit = Router.Config.Audit_phase;
    }
  in
  let d = Router.Config.describe c in
  let has needle =
    let open String in
    let n = length needle and l = length d in
    let rec at i = i + n <= l && (sub d i n = needle || at (i + 1)) in
    at 0
  in
  Testkit.check_true "deadline shown" (has "deadline=0.5s");
  Testkit.check_true "expansions shown" (has "max-expanded=1000");
  Testkit.check_true "audit shown" (has "audit=phase")

let test_report_status_line () =
  let p = Workload.Gen.routable_switchbox (prng 5) ~width:12 ~height:10 in
  let complete = Router.Engine.route p in
  let degraded =
    Router.Engine.route
      ~config:{ Router.Config.default with deadline = Some 0.0 }
      p
  in
  let contains s needle =
    let n = String.length needle and l = String.length s in
    let rec at i = i + n <= l && (String.sub s i n = needle || at (i + 1)) in
    at 0
  in
  Testkit.check_false "complete report has no status line"
    (contains (Router.Report.render p complete) "status:");
  Testkit.check_true "degraded report names the reason"
    (contains (Router.Report.render p degraded) "deadline exceeded")

(* --- satellite 4: the budget property --- *)

let prop_budget_bounds_engine =
  Testkit.qcheck ~count:60 "random tiny budgets: bounded, clean, honest"
    QCheck2.Gen.(
      triple (int_range 0 100_000) (int_range 0 2_000) (int_range 0 20))
    (fun (seed, max_expanded, max_searches) ->
      let p =
        Workload.Gen.switchbox (prng seed) ~width:12 ~height:10 ~nets:6
      in
      let budget =
        Router.Budget.create ~max_expanded ~max_searches ()
      in
      let result = Router.Engine.route ~budget p in
      let stats = result.Router.Engine.stats in
      (* Bounded effort: the ledger may overshoot only by the polling
         granularity (one check interval) plus one sub-interval search. *)
      Router.Budget.expanded budget <= max_expanded + 256
      && Router.Budget.searches budget <= max_searches + 1
      (* The partial layout is always DRC-clean. *)
      && Testkit.drc_routed p result = []
      (* Status is honest. *)
      && (result.Router.Engine.status <> Router.Outcome.Complete
         || stats.Router.Engine.failed_nets = [])
      && result.Router.Engine.completed
         = (result.Router.Engine.status = Router.Outcome.Complete)
      && (stats.Router.Engine.failed_nets <> []
         || result.Router.Engine.status = Router.Outcome.Complete))

let () =
  Alcotest.run "budget"
    [
      ( "budget",
        [
          Alcotest.test_case "unlimited" `Quick test_unlimited;
          Alcotest.test_case "search limit" `Quick test_search_limit;
          Alcotest.test_case "expansion limit" `Quick test_expansion_limit;
          Alcotest.test_case "deadline zero" `Quick test_deadline_zero;
          Alcotest.test_case "hook and trip latch" `Quick test_hook_and_trip;
          Alcotest.test_case "add_hook composes" `Quick test_add_hook_composes;
        ] );
      ( "engine",
        [
          Alcotest.test_case "deadline zero degrades" `Quick
            test_engine_deadline_zero;
          Alcotest.test_case "search limit degrades" `Quick
            test_engine_search_limit;
          Alcotest.test_case "expansion limit degrades" `Quick
            test_engine_expansion_limit;
          Alcotest.test_case "unlimited budget is identity" `Quick
            test_engine_unlimited_budget_is_identity;
          Alcotest.test_case "budget shared across restarts" `Quick
            test_engine_budget_shared_across_restarts;
          Alcotest.test_case "describe mentions budgets" `Quick
            test_describe_mentions_budgets;
          Alcotest.test_case "report status line" `Quick
            test_report_status_line;
          prop_budget_bounds_engine;
        ] );
    ]
