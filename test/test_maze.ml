(* Tests for the maze search and net routing: optimality, obstacle
   handling, via/wrong-way costs, A-star agreement, tree routing and
   rollback. *)

let pin = Netlist.Net.pin

let empty_grid ?(w = 12) ?(h = 10) () =
  let g = Grid.create ~width:w ~height:h () in
  (g, Maze.Workspace.create g)

let free_passable g n =
  if Grid.is_free g n then Some 0 else None

let self_passable g ~net n =
  let v = Grid.occ g n in
  if v = Grid.free || v = net then Some 0 else None

let run ?(cost = Maze.Cost.uniform) g ws ~sources ~targets () =
  Maze.Search.run g ws ~cost ~passable:(free_passable g) ~sources ~targets ()

let test_search_trivial () =
  let g, ws = empty_grid () in
  let n = Grid.node g ~layer:0 ~x:3 ~y:3 in
  match run g ws ~sources:[ n ] ~targets:[ n ] () with
  | Some r ->
      Testkit.check_true "source is target" (r.Maze.Search.path = [ n ]);
      Testkit.check_int "zero cost" 0 r.Maze.Search.total_cost
  | None -> Alcotest.fail "trivial search failed"

let test_search_straight_line () =
  let g, ws = empty_grid () in
  let a = Grid.node g ~layer:0 ~x:0 ~y:5 and b = Grid.node g ~layer:0 ~x:9 ~y:5 in
  match run g ws ~sources:[ a ] ~targets:[ b ] () with
  | Some r ->
      Testkit.check_int "manhattan cost" 9 r.Maze.Search.total_cost;
      Testkit.check_int "path length" 10 (List.length r.Maze.Search.path);
      Testkit.check_true "path valid" (Grid.Path.is_valid g r.Maze.Search.path)
  | None -> Alcotest.fail "line search failed"

let test_search_manhattan_optimal () =
  let g, ws = empty_grid () in
  let a = Grid.node g ~layer:0 ~x:1 ~y:1 and b = Grid.node g ~layer:0 ~x:8 ~y:7 in
  match run g ws ~sources:[ a ] ~targets:[ b ] () with
  | Some r -> Testkit.check_int "L1 distance" (7 + 6) r.Maze.Search.total_cost
  | None -> Alcotest.fail "search failed"

let test_search_respects_obstacles () =
  let g, ws = empty_grid ~w:9 ~h:5 () in
  (* Wall across both layers at x=4, forcing failure. *)
  for y = 0 to 4 do
    Grid.set_obstacle_all g ~x:4 ~y
  done;
  let a = Grid.node g ~layer:0 ~x:0 ~y:2 and b = Grid.node g ~layer:0 ~x:8 ~y:2 in
  Testkit.check_true "wall blocks"
    (run g ws ~sources:[ a ] ~targets:[ b ] () = None)

let test_search_detours_around_wall () =
  let g, ws = empty_grid ~w:9 ~h:5 () in
  for y = 0 to 3 do
    Grid.set_obstacle_all g ~x:4 ~y
  done;
  let a = Grid.node g ~layer:0 ~x:0 ~y:0 and b = Grid.node g ~layer:0 ~x:8 ~y:0 in
  match run g ws ~sources:[ a ] ~targets:[ b ] () with
  | Some r ->
      (* must climb to y=4 and back: 8 horizontal + 8 vertical *)
      Testkit.check_int "detour cost" 16 r.Maze.Search.total_cost;
      Testkit.check_true "avoids wall"
        (List.for_all (fun n -> not (Grid.is_obstacle g n)) r.Maze.Search.path)
  | None -> Alcotest.fail "detour failed"

let test_search_uses_via_when_needed () =
  let g, ws = empty_grid ~w:7 ~h:3 () in
  (* Layer 0 fully walled at x=3; layer 1 open. *)
  for y = 0 to 2 do
    Grid.set_obstacle g ~layer:0 ~x:3 ~y
  done;
  let a = Grid.node g ~layer:0 ~x:0 ~y:1 and b = Grid.node g ~layer:0 ~x:6 ~y:1 in
  match
    Maze.Search.run g ws ~cost:Maze.Cost.default ~passable:(free_passable g)
      ~sources:[ a ] ~targets:[ b ] ()
  with
  | Some r ->
      Testkit.check_true "at least two vias"
        (Grid.Path.via_steps g r.Maze.Search.path >= 2);
      Testkit.check_true "valid" (Grid.Path.is_valid g r.Maze.Search.path)
  | None -> Alcotest.fail "via search failed"

let test_via_cost_discourages_layer_change () =
  let g, ws = empty_grid () in
  let a = Grid.node g ~layer:0 ~x:0 ~y:0 and b = Grid.node g ~layer:0 ~x:5 ~y:0 in
  match
    Maze.Search.run g ws
      ~cost:{ Maze.Cost.wire = 1; via = 100; wrong_way = 0 }
      ~passable:(free_passable g) ~sources:[ a ] ~targets:[ b ] ()
  with
  | Some r ->
      Testkit.check_int "no vias" 0 (Grid.Path.via_steps g r.Maze.Search.path)
  | None -> Alcotest.fail "search failed"

let test_wrong_way_cost_prefers_layer () =
  let g, ws = empty_grid () in
  (* Vertical run: cheap on layer 1, expensive on layer 0. *)
  let a = Grid.node g ~layer:1 ~x:5 ~y:0 and b = Grid.node g ~layer:1 ~x:5 ~y:8 in
  match
    Maze.Search.run g ws
      ~cost:{ Maze.Cost.wire = 1; via = 2; wrong_way = 10 }
      ~passable:(free_passable g) ~sources:[ a ] ~targets:[ b ] ()
  with
  | Some r ->
      Testkit.check_true "stays on vertical layer"
        (List.for_all (fun n -> Grid.node_layer g n = 1) r.Maze.Search.path)
  | None -> Alcotest.fail "search failed"

let test_penalty_prices_foreign_cells () =
  let g, ws = empty_grid ~w:7 ~h:3 () in
  (* Both layers at x=3 owned by net 9; passable at a price. *)
  for y = 0 to 2 do
    Grid.occupy g ~net:9 (Grid.node g ~layer:0 ~x:3 ~y);
    Grid.occupy g ~net:9 (Grid.node g ~layer:1 ~x:3 ~y)
  done;
  let a = Grid.node g ~layer:0 ~x:0 ~y:1 and b = Grid.node g ~layer:0 ~x:6 ~y:1 in
  let passable n =
    let v = Grid.occ g n in
    if v = Grid.free then Some 0 else if v = 9 then Some 50 else None
  in
  match
    Maze.Search.run g ws ~cost:Maze.Cost.uniform ~passable ~sources:[ a ]
      ~targets:[ b ] ()
  with
  | Some r ->
      Testkit.check_int "wire(6) + one crossing(50)" 56 r.Maze.Search.total_cost
  | None -> Alcotest.fail "penalized search failed"

let test_multi_source_picks_nearest () =
  let g, ws = empty_grid () in
  let far = Grid.node g ~layer:0 ~x:0 ~y:0 in
  let near = Grid.node g ~layer:0 ~x:7 ~y:7 in
  let target = Grid.node g ~layer:0 ~x:8 ~y:7 in
  match run g ws ~sources:[ far; near ] ~targets:[ target ] () with
  | Some r -> Testkit.check_int "one step from near source" 1 r.Maze.Search.total_cost
  | None -> Alcotest.fail "multi-source failed"

let test_workspace_reuse () =
  let g, ws = empty_grid () in
  let a = Grid.node g ~layer:0 ~x:0 ~y:0 and b = Grid.node g ~layer:0 ~x:3 ~y:0 in
  for _ = 1 to 50 do
    match run g ws ~sources:[ a ] ~targets:[ b ] () with
    | Some r -> Testkit.check_int "stable cost" 3 r.Maze.Search.total_cost
    | None -> Alcotest.fail "reuse failed"
  done

let random_obstacle_grid seed =
  let prng = Util.Prng.create seed in
  let g = Grid.create ~width:10 ~height:8 () in
  Grid.iter_nodes g (fun n ->
      if Util.Prng.chance prng 0.25 then
        Grid.set_obstacle g
          ~layer:(Grid.node_layer g n)
          ~x:(Grid.node_x g n) ~y:(Grid.node_y g n));
  g

let test_lee_matches_uniform_dijkstra () =
  let g, ws = empty_grid () in
  let a = Grid.node g ~layer:0 ~x:1 ~y:1 and b = Grid.node g ~layer:0 ~x:8 ~y:7 in
  (match Maze.Search.run_lee g ws ~passable:(free_passable g) ~sources:[ a ] ~targets:[ b ] () with
  | Some r ->
      Testkit.check_int "minimum steps" 13 r.Maze.Search.total_cost;
      Testkit.check_true "valid" (Grid.Path.is_valid g r.Maze.Search.path)
  | None -> Alcotest.fail "lee failed");
  (* blocked case *)
  for y = 0 to 9 do
    Grid.set_obstacle_all g ~x:5 ~y
  done;
  Testkit.check_true "lee blocked"
    (Maze.Search.run_lee g ws ~passable:(free_passable g) ~sources:[ a ] ~targets:[ b ] () = None)

let prop_lee_length_matches_dijkstra =
  Testkit.qcheck ~count:40 "lee step count equals uniform Dijkstra cost"
    QCheck2.Gen.(pair (int_range 0 10000) (int_range 0 79))
    (fun (seed, b) ->
      let g = random_obstacle_grid seed in
      let ws = Maze.Workspace.create g in
      let a = 0 in
      if (not (Grid.is_free g a)) || not (Grid.is_free g b) then true
      else
        let lee =
          Maze.Search.run_lee g ws ~passable:(free_passable g) ~sources:[ a ]
            ~targets:[ b ] ()
        in
        let dij =
          Maze.Search.run g ws ~cost:Maze.Cost.uniform
            ~passable:(free_passable g) ~sources:[ a ] ~targets:[ b ] ()
        in
        match (lee, dij) with
        | None, None -> true
        | Some l, Some d -> l.Maze.Search.total_cost = d.Maze.Search.total_cost
        | Some _, None | None, Some _ -> false)

let prop_astar_matches_dijkstra =
  Testkit.qcheck ~count:60 "A* cost equals Dijkstra cost"
    QCheck2.Gen.(
      triple (int_range 0 10000) (int_range 0 79) (int_range 0 79))
    (fun (seed, a_planar, b_planar) ->
      let g = random_obstacle_grid seed in
      let ws = Maze.Workspace.create g in
      let a = a_planar and b = b_planar in
      if (not (Grid.is_free g a)) || not (Grid.is_free g b) then true
      else begin
        let dij =
          Maze.Search.run g ws ~cost:Maze.Cost.default
            ~passable:(free_passable g) ~sources:[ a ] ~targets:[ b ] ()
        in
        let ast =
          Maze.Search.run_astar g ws ~cost:Maze.Cost.default
            ~passable:(free_passable g) ~sources:[ a ] ~targets:[ b ] ()
        in
        match (dij, ast) with
        | None, None -> true
        | Some d, Some s ->
            d.Maze.Search.total_cost = s.Maze.Search.total_cost
            && s.Maze.Search.expanded <= d.Maze.Search.expanded
        | Some _, None | None, Some _ -> false
      end)

let prop_path_cost_consistent =
  Testkit.qcheck ~count:60 "reported cost matches path metrics"
    QCheck2.Gen.(pair (int_range 0 10000) (int_range 0 79))
    (fun (seed, b) ->
      let g = random_obstacle_grid seed in
      let ws = Maze.Workspace.create g in
      let a = 0 in
      if (not (Grid.is_free g a)) || not (Grid.is_free g b) then true
      else
        match
          Maze.Search.run g ws ~cost:Maze.Cost.uniform
            ~passable:(free_passable g) ~sources:[ a ] ~targets:[ b ] ()
        with
        | None -> true
        | Some r ->
            Grid.Path.is_valid g r.Maze.Search.path
            && r.Maze.Search.total_cost
               = Grid.Path.wirelength g r.Maze.Search.path
                 + Grid.Path.via_steps g r.Maze.Search.path)

(* --- kernel and window equivalence --- *)

let prop_buckets_match_heap =
  Testkit.qcheck ~count:60 "bucket kernel cost equals heap kernel cost"
    QCheck2.Gen.(
      triple (int_range 0 10000) (int_range 0 79) (int_range 0 79))
    (fun (seed, a, b) ->
      let g = random_obstacle_grid seed in
      let ws = Maze.Workspace.create g in
      if (not (Grid.is_free g a)) || not (Grid.is_free g b) then true
      else begin
        let with_kernel kernel astar =
          let f =
            if astar then Maze.Search.run_astar ~memo:false
            else Maze.Search.run
          in
          f ~kernel g ws ~cost:Maze.Cost.default ~passable:(free_passable g)
            ~sources:[ a ] ~targets:[ b ] ()
        in
        let agree x y =
          match (x, y) with
          | None, None -> true
          | Some (l : Maze.Search.result), Some (r : Maze.Search.result) ->
              l.Maze.Search.total_cost = r.Maze.Search.total_cost
          | Some _, None | None, Some _ -> false
        in
        let heap = with_kernel Maze.Search.Binary_heap false in
        agree heap (with_kernel Maze.Search.Buckets false)
        && agree heap (with_kernel Maze.Search.Binary_heap true)
        && agree heap (with_kernel Maze.Search.Buckets true)
      end)

let prop_windowed_matches_full =
  Testkit.qcheck ~count:60 "windowed search reaches everything full search does"
    QCheck2.Gen.(
      quad (int_range 0 10000) (int_range 0 79) (int_range 0 79)
        (int_range 0 3))
    (fun (seed, a, b, margin) ->
      let g = random_obstacle_grid seed in
      let ws = Maze.Workspace.create g in
      if (not (Grid.is_free g a)) || not (Grid.is_free g b) then true
      else begin
        let full =
          Maze.Search.run_astar g ws ~cost:Maze.Cost.default
            ~passable:(free_passable g) ~sources:[ a ] ~targets:[ b ] ()
        in
        let windowed =
          Maze.Search.run_astar ~window:margin g ws ~cost:Maze.Cost.default
            ~passable:(free_passable g) ~sources:[ a ] ~targets:[ b ] ()
        in
        match (full, windowed) with
        | None, None -> true
        | Some f, Some w ->
            f.Maze.Search.total_cost = w.Maze.Search.total_cost
        | Some _, None | None, Some _ -> false
      end)

let test_window_widens_on_failure () =
  (* The wall-detour geometry from test_search_detours_around_wall: the
     optimal path must leave the pins' bounding row (y=0) and climb to y=4,
     so a margin-0 window cannot contain it — the search must widen and
     still return the optimal cost-16 detour. *)
  let g, ws = empty_grid ~w:9 ~h:5 () in
  for y = 0 to 3 do
    Grid.set_obstacle_all g ~x:4 ~y
  done;
  let a = Grid.node g ~layer:0 ~x:0 ~y:0 and b = Grid.node g ~layer:0 ~x:8 ~y:0 in
  match
    Maze.Search.run ~window:0 g ws ~cost:Maze.Cost.uniform
      ~passable:(free_passable g) ~sources:[ a ] ~targets:[ b ] ()
  with
  | Some r ->
      Testkit.check_int "widened to optimal detour" 16 r.Maze.Search.total_cost;
      Testkit.check_true "avoids wall"
        (List.for_all (fun n -> not (Grid.is_obstacle g n)) r.Maze.Search.path)
  | None -> Alcotest.fail "windowed search failed to widen"

let test_window_unreachable_returns_none () =
  let g, ws = empty_grid ~w:9 ~h:5 () in
  for y = 0 to 4 do
    Grid.set_obstacle_all g ~x:4 ~y
  done;
  let a = Grid.node g ~layer:0 ~x:0 ~y:2 and b = Grid.node g ~layer:0 ~x:8 ~y:2 in
  Testkit.check_true "windowed search reports unreachable"
    (Maze.Search.run ~window:1 g ws ~cost:Maze.Cost.uniform
       ~passable:(free_passable g) ~sources:[ a ] ~targets:[ b ] ()
    = None)

let test_buckets_count_expansions () =
  let g, ws = empty_grid () in
  let a = Grid.node g ~layer:0 ~x:0 ~y:5 and b = Grid.node g ~layer:0 ~x:9 ~y:5 in
  match
    Maze.Search.run ~kernel:Maze.Search.Buckets g ws ~cost:Maze.Cost.uniform
      ~passable:(free_passable g) ~sources:[ a ] ~targets:[ b ] ()
  with
  | Some r ->
      Testkit.check_int "manhattan cost" 9 r.Maze.Search.total_cost;
      Testkit.check_true "expanded counted" (r.Maze.Search.expanded > 0)
  | None -> Alcotest.fail "bucket search failed"

let test_workspace_reset_explicit () =
  let g = Grid.create ~width:4 ~height:4 () in
  let ws = Maze.Workspace.create g in
  Maze.Workspace.begin_search ws;
  Maze.Workspace.mark ws 3;
  Util.Bucketq.push (Maze.Workspace.buckets ws) 1 3;
  Maze.Workspace.reset ws;
  Testkit.check_false "marks cleared" (Maze.Workspace.marked ws 3);
  Testkit.check_true "buckets cleared"
    (Util.Bucketq.is_empty (Maze.Workspace.buckets ws))

let test_cost_model () =
  Testkit.check_int "preferred horizontal on L0" 1
    (Maze.Cost.step_cost Maze.Cost.default ~prefers_h:true ~horizontal:true);
  Testkit.check_int "wrong way vertical on L0" 3
    (Maze.Cost.step_cost Maze.Cost.default ~prefers_h:true ~horizontal:false);
  Testkit.check_int "preferred vertical on L1" 1
    (Maze.Cost.step_cost Maze.Cost.default ~prefers_h:false ~horizontal:false);
  Testkit.check_int "uniform symmetric" 1
    (Maze.Cost.step_cost Maze.Cost.uniform ~prefers_h:true ~horizontal:false)

let test_workspace_marks_reset () =
  let g = Grid.create ~width:4 ~height:4 () in
  let ws = Maze.Workspace.create g in
  Maze.Workspace.begin_search ws;
  Maze.Workspace.mark ws 5;
  Testkit.check_true "marked" (Maze.Workspace.marked ws 5);
  Maze.Workspace.begin_search ws;
  Testkit.check_false "reset clears marks" (Maze.Workspace.marked ws 5);
  Testkit.check_true "dist reset" (Maze.Workspace.dist ws 5 = max_int)

(* --- net routing --- *)

let test_route_net_two_pins () =
  let net = Netlist.Net.make ~id:1 ~name:"a" [ pin 0 0; pin 9 7 ] in
  let p = Netlist.Problem.make ~name:"t" ~width:12 ~height:10 [ net ] in
  let g = Netlist.Problem.instantiate p in
  let ws = Maze.Workspace.create g in
  match Maze.Route.route_net g ws ~cost:Maze.Cost.default net with
  | Ok s ->
      Testkit.check_true "wirelength at least L1" (s.Maze.Route.wirelength >= 16);
      Testkit.check_int "connected" 1 (Drc.Check.connected_components g ~net:1)
  | Error _ -> Alcotest.fail "two-pin route failed"

let test_route_net_multi_pin_tree () =
  let net =
    Netlist.Net.make ~id:1 ~name:"a" [ pin 0 0; pin 11 0; pin 0 9; pin 11 9; pin 5 5 ]
  in
  let p = Netlist.Problem.make ~name:"t" ~width:12 ~height:10 [ net ] in
  let g = Netlist.Problem.instantiate p in
  let ws = Maze.Workspace.create g in
  match Maze.Route.route_net g ws ~cost:Maze.Cost.default net with
  | Ok _ ->
      Testkit.check_int "single component" 1
        (Drc.Check.connected_components g ~net:1)
  | Error _ -> Alcotest.fail "multi-pin route failed"

let test_route_net_trivial () =
  let net = Netlist.Net.make ~id:1 ~name:"a" [ pin 3 3 ] in
  let p = Netlist.Problem.make ~name:"t" ~width:6 ~height:6 [ net ] in
  let g = Netlist.Problem.instantiate p in
  let ws = Maze.Workspace.create g in
  match Maze.Route.route_net g ws ~cost:Maze.Cost.default net with
  | Ok s -> Testkit.check_int "nothing added" 0 (List.length s.Maze.Route.added)
  | Error _ -> Alcotest.fail "trivial net failed"

let test_route_net_rollback_on_failure () =
  (* Net with one reachable and one sealed-off pin: everything must be
     rolled back. *)
  let net =
    Netlist.Net.make ~id:1 ~name:"a" [ pin 0 0; pin 5 0; pin ~layer:0 11 9 ]
  in
  let p = Netlist.Problem.make ~name:"t" ~width:12 ~height:10 [ net ] in
  let g = Netlist.Problem.instantiate p in
  (* Seal off the corner pin on both layers. *)
  List.iter
    (fun (x, y) -> Grid.set_obstacle_all g ~x ~y)
    [ (10, 9); (11, 8); (10, 8) ];
  let ws = Maze.Workspace.create g in
  let before = Grid.count_owned g ~net:1 in
  (match Maze.Route.route_net g ws ~cost:Maze.Cost.default net with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error f ->
      Testkit.check_int "failing net id" 1 f.Maze.Route.failed_net);
  Testkit.check_int "grid restored" before (Grid.count_owned g ~net:1);
  Testkit.check_int "no vias left" 0 (Grid.via_count g)

let test_occupy_path_vias () =
  let g, _ = empty_grid () in
  let n ~layer ~x ~y = Grid.node g ~layer ~x ~y in
  let path =
    [ n ~layer:0 ~x:0 ~y:0; n ~layer:0 ~x:1 ~y:0; n ~layer:1 ~x:1 ~y:0 ]
  in
  let added = Maze.Route.occupy_path g ~net:4 path in
  Testkit.check_int "three nodes" 3 (List.length added);
  Testkit.check_true "via placed" (Grid.has_via g ~x:1 ~y:0);
  Maze.Route.release_nodes g added;
  Testkit.check_int "released" 0 (Grid.count_owned g ~net:4)

let prop_route_net_connects_random_pins =
  Testkit.qcheck ~count:40 "route_net connects random pin sets on empty grids"
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let prng = Util.Prng.create seed in
      let w = Util.Prng.int_in prng 6 14 and h = Util.Prng.int_in prng 6 12 in
      let k = Util.Prng.int_in prng 2 5 in
      let cells = ref [] in
      for _ = 1 to k do
        let rec fresh () =
          let c =
            (Util.Prng.int prng w, Util.Prng.int prng h, Util.Prng.int prng 2)
          in
          if List.mem c !cells then fresh () else c
        in
        cells := fresh () :: !cells
      done;
      let pins = List.map (fun (x, y, l) -> pin ~layer:l x y) !cells in
      let net = Netlist.Net.make ~id:1 ~name:"r" pins in
      let p = Netlist.Problem.make ~name:"t" ~width:w ~height:h [ net ] in
      let g = Netlist.Problem.instantiate p in
      let ws = Maze.Workspace.create g in
      match Maze.Route.route_net g ws ~cost:Maze.Cost.default net with
      | Ok _ -> Drc.Check.connected_components g ~net:1 = 1
      | Error _ -> false)

let test_reachable_oracle () =
  let g, ws = empty_grid ~w:6 ~h:4 () in
  let a = Grid.node g ~layer:0 ~x:0 ~y:0 and b = Grid.node g ~layer:0 ~x:5 ~y:3 in
  Testkit.check_true "open grid reachable"
    (Maze.Search.reachable g ws ~passable:(free_passable g) ~sources:[ a ]
       ~targets:[ b ]);
  for y = 0 to 3 do
    Grid.set_obstacle_all g ~x:3 ~y
  done;
  Testkit.check_false "walled off"
    (Maze.Search.reachable g ws ~passable:(free_passable g) ~sources:[ a ]
       ~targets:[ b ])

let test_self_cells_passable () =
  let g, ws = empty_grid ~w:8 ~h:3 () in
  (* Own wire crossing the middle is passable at zero cost. *)
  for y = 0 to 2 do
    Grid.occupy g ~net:1 (Grid.node g ~layer:0 ~x:4 ~y)
  done;
  let a = Grid.node g ~layer:0 ~x:0 ~y:1 and b = Grid.node g ~layer:0 ~x:7 ~y:1 in
  match
    Maze.Search.run g ws ~cost:Maze.Cost.uniform
      ~passable:(self_passable g ~net:1) ~sources:[ a ] ~targets:[ b ] ()
  with
  | Some r -> Testkit.check_int "straight through" 7 r.Maze.Search.total_cost
  | None -> Alcotest.fail "self-passable failed"

(* --- the touched-region accumulator (read certificates, DESIGN.md §8) --- *)

let test_touched_accumulates_across_searches () =
  let g, ws = empty_grid () in
  Maze.Workspace.clear_touched ws;
  Testkit.check_true "initially empty"
    (Maze.Workspace.touched ws ~layer:0 = None
    && Maze.Workspace.touched ws ~layer:1 = None);
  let a = Grid.node g ~layer:0 ~x:0 ~y:2 and b = Grid.node g ~layer:0 ~x:4 ~y:2 in
  ignore (run g ws ~sources:[ a ] ~targets:[ b ] ());
  let r1 =
    match Maze.Workspace.touched ws ~layer:0 with
    | Some r -> r
    | None -> Alcotest.fail "search touched nothing"
  in
  Testkit.check_true "covers both endpoints"
    (Geom.Rect.mem r1 0 2 && Geom.Rect.mem r1 4 2);
  (* a second search widens, never resets, the accumulator — escalation
     runs several probes per connection and the certificate must cover
     them all *)
  let c = Grid.node g ~layer:0 ~x:9 ~y:8 in
  ignore (run g ws ~sources:[ b ] ~targets:[ c ] ());
  let r2 =
    match Maze.Workspace.touched ws ~layer:0 with
    | Some r -> r
    | None -> Alcotest.fail "accumulator lost"
  in
  Testkit.check_true "accumulates across begin_search"
    (Geom.Rect.contains r2 r1 && Geom.Rect.mem r2 9 8);
  Maze.Workspace.clear_touched ws;
  Testkit.check_true "explicit clear empties"
    (Maze.Workspace.touched ws ~layer:0 = None)

let test_touched_note_merges () =
  let g, ws = empty_grid () in
  ignore g;
  Maze.Workspace.clear_touched ws;
  Maze.Workspace.note_touched ws ~layer:1 ~x0:2 ~y0:3 ~x1:4 ~y1:5;
  Maze.Workspace.note_touched ws ~layer:1 ~x0:6 ~y0:1 ~x1:7 ~y1:2;
  (match Maze.Workspace.touched ws ~layer:1 with
  | Some r -> Testkit.check_true "hull of notes" (r = Geom.Rect.make 2 1 7 5)
  | None -> Alcotest.fail "notes lost");
  Testkit.check_true "other layer untouched"
    (Maze.Workspace.touched ws ~layer:0 = None)

let () =
  Alcotest.run "maze"
    [
      ( "search",
        [
          Alcotest.test_case "trivial" `Quick test_search_trivial;
          Alcotest.test_case "straight line" `Quick test_search_straight_line;
          Alcotest.test_case "manhattan optimal" `Quick test_search_manhattan_optimal;
          Alcotest.test_case "respects obstacles" `Quick test_search_respects_obstacles;
          Alcotest.test_case "detours" `Quick test_search_detours_around_wall;
          Alcotest.test_case "uses vias" `Quick test_search_uses_via_when_needed;
          Alcotest.test_case "via cost" `Quick test_via_cost_discourages_layer_change;
          Alcotest.test_case "wrong-way cost" `Quick test_wrong_way_cost_prefers_layer;
          Alcotest.test_case "foreign penalty" `Quick test_penalty_prices_foreign_cells;
          Alcotest.test_case "multi-source" `Quick test_multi_source_picks_nearest;
          Alcotest.test_case "workspace reuse" `Quick test_workspace_reuse;
          Alcotest.test_case "reachability oracle" `Quick test_reachable_oracle;
          Alcotest.test_case "cost model" `Quick test_cost_model;
          Alcotest.test_case "workspace marks" `Quick test_workspace_marks_reset;
          Alcotest.test_case "self cells passable" `Quick test_self_cells_passable;
          Alcotest.test_case "lee wave expansion" `Quick test_lee_matches_uniform_dijkstra;
          prop_lee_length_matches_dijkstra;
          prop_astar_matches_dijkstra;
          prop_path_cost_consistent;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "buckets basic" `Quick test_buckets_count_expansions;
          Alcotest.test_case "window widens" `Quick test_window_widens_on_failure;
          Alcotest.test_case "window unreachable" `Quick test_window_unreachable_returns_none;
          Alcotest.test_case "workspace reset" `Quick test_workspace_reset_explicit;
          prop_buckets_match_heap;
          prop_windowed_matches_full;
        ] );
      ( "touched",
        [
          Alcotest.test_case "accumulates across searches" `Quick
            test_touched_accumulates_across_searches;
          Alcotest.test_case "note merges" `Quick test_touched_note_merges;
        ] );
      ( "route",
        [
          Alcotest.test_case "two pins" `Quick test_route_net_two_pins;
          Alcotest.test_case "multi-pin tree" `Quick test_route_net_multi_pin_tree;
          Alcotest.test_case "trivial net" `Quick test_route_net_trivial;
          Alcotest.test_case "rollback on failure" `Quick test_route_net_rollback_on_failure;
          Alcotest.test_case "occupy_path vias" `Quick test_occupy_path_vias;
          prop_route_net_connects_random_pins;
        ] );
    ]
