(* Tests for nets, problems, builders, the text format and congestion
   analysis. *)

let pin = Netlist.Net.pin

(* --- nets --- *)

let test_net_make () =
  let n = Netlist.Net.make ~id:1 ~name:"a" [ pin 0 0; pin ~layer:1 3 4 ] in
  Testkit.check_int "pins" 2 (Netlist.Net.pin_count n);
  Testkit.check_false "not trivial" (Netlist.Net.is_trivial n);
  Testkit.check_int "hpwl" 7 (Netlist.Net.half_perimeter n)

let test_net_rejects_bad () =
  (try
     ignore (Netlist.Net.make ~id:0 ~name:"z" []);
     Alcotest.fail "expected id rejection"
   with Invalid_argument _ -> ());
  try
    ignore (Netlist.Net.make ~id:1 ~name:"d" [ pin 1 1; pin 1 1 ]);
    Alcotest.fail "expected duplicate pin rejection"
  with Invalid_argument _ -> ()

let test_net_trivial_and_bbox () =
  let n = Netlist.Net.make ~id:1 ~name:"t" [ pin 2 3 ] in
  Testkit.check_true "single pin trivial" (Netlist.Net.is_trivial n);
  Testkit.check_int "hpwl zero" 0 (Netlist.Net.half_perimeter n);
  Testkit.check_true "bbox degenerate"
    (Netlist.Net.bounding_box n = Some (Geom.Rect.make 2 3 2 3));
  let empty = Netlist.Net.make ~id:2 ~name:"e" [] in
  Testkit.check_true "no bbox" (Netlist.Net.bounding_box empty = None)

(* --- problems --- *)

let simple_problem () =
  Netlist.Problem.make ~name:"p" ~width:10 ~height:8
    [
      Netlist.Net.make ~id:1 ~name:"a" [ pin 0 0; pin 9 7 ];
      Netlist.Net.make ~id:2 ~name:"b" [ pin 5 5; pin ~layer:1 5 6 ];
    ]

let test_problem_basics () =
  let p = simple_problem () in
  Testkit.check_int "nets" 2 (Netlist.Problem.net_count p);
  Testkit.check_int "pins" 4 (Netlist.Problem.total_pins p);
  Testkit.check_true "find by name"
    ((Netlist.Problem.find_net p "b" |> Option.get).Netlist.Net.id = 2);
  Testkit.check_true "unknown name" (Netlist.Problem.find_net p "zz" = None);
  Testkit.check_true "nontrivial ids"
    (Netlist.Problem.nontrivial_net_ids p = [ 1; 2 ])

let test_problem_validation () =
  let net id name pins = Netlist.Net.make ~id ~name pins in
  (try
     ignore
       (Netlist.Problem.make ~name:"bad" ~width:4 ~height:4
          [ net 2 "a" [ pin 0 0 ] ]);
     Alcotest.fail "expected id gap rejection"
   with Invalid_argument _ -> ());
  (try
     ignore
       (Netlist.Problem.make ~name:"bad" ~width:4 ~height:4
          [ net 1 "a" [ pin 4 0 ] ]);
     Alcotest.fail "expected out-of-bounds rejection"
   with Invalid_argument _ -> ());
  (try
     ignore
       (Netlist.Problem.make ~name:"bad" ~width:4 ~height:4
          [ net 1 "a" [ pin 1 1 ]; net 2 "b" [ pin 1 1 ] ]);
     Alcotest.fail "expected shared-cell rejection"
   with Invalid_argument _ -> ());
  try
    ignore
      (Netlist.Problem.make ~name:"bad" ~width:4 ~height:4
         ~obstructions:
           [
             {
               Netlist.Problem.obs_layer = None;
               obs_rect = Geom.Rect.make 0 0 1 1;
             };
           ]
         [ net 1 "a" [ pin 1 1 ] ]);
    Alcotest.fail "expected obstructed pin rejection"
  with Invalid_argument _ -> ()

let test_problem_instantiate () =
  let p =
    Netlist.Problem.make ~name:"q" ~width:6 ~height:6
      ~obstructions:
        [
          {
            Netlist.Problem.obs_layer = Some 1;
            obs_rect = Geom.Rect.make 2 2 3 3;
          };
        ]
      [ Netlist.Net.make ~id:1 ~name:"a" [ pin 0 0; pin 5 5 ] ]
  in
  let g = Netlist.Problem.instantiate p in
  Testkit.check_true "pin occupied"
    (Grid.owner g (Grid.node g ~layer:0 ~x:0 ~y:0) = Some 1);
  Testkit.check_true "obstruction layer1"
    (Grid.is_obstacle g (Grid.node g ~layer:1 ~x:2 ~y:2));
  Testkit.check_true "layer0 free there"
    (Grid.is_free g (Grid.node g ~layer:0 ~x:2 ~y:2))

let test_problem_prewires () =
  let p =
    Netlist.Problem.make ~name:"pw" ~width:6 ~height:4
      ~prewires:
        [
          {
            Netlist.Problem.pre_net = 1;
            pre_cells = [ (0, 1, 1); (0, 2, 1); (1, 2, 1) ];
            pre_fixed = false;
          };
        ]
      [ Netlist.Net.make ~id:1 ~name:"a" [ pin 0 1; pin ~layer:1 2 3 ] ]
  in
  let g = Netlist.Problem.instantiate p in
  Testkit.check_true "prewire occupied"
    (Grid.owner g (Grid.node g ~layer:0 ~x:1 ~y:1) = Some 1);
  Testkit.check_true "stacked prewire gets via" (Grid.has_via g ~x:2 ~y:1)

let test_prewire_validation () =
  try
    ignore
      (Netlist.Problem.make ~name:"pw" ~width:4 ~height:4
         ~prewires:
           [
             {
               Netlist.Problem.pre_net = 7;
               pre_cells = [ (0, 0, 0) ];
               pre_fixed = false;
             };
           ]
         [ Netlist.Net.make ~id:1 ~name:"a" [ pin 1 1 ] ]);
    Alcotest.fail "expected unknown net rejection"
  with Invalid_argument _ -> ()

(* --- builders --- *)

let test_build_channel_conventions () =
  let p =
    Netlist.Build.channel ~tracks:3 ~top:[| 1; 0; 2 |] ~bottom:[| 2; 1; 0 |] ()
  in
  Testkit.check_int "height = tracks+2" 5 p.Netlist.Problem.height;
  Testkit.check_int "width = columns" 3 p.Netlist.Problem.width;
  Testkit.check_int "nets" 2 (Netlist.Problem.net_count p);
  let g = Netlist.Problem.instantiate p in
  Testkit.check_true "top pin layer1"
    (Grid.owner g (Grid.node g ~layer:1 ~x:0 ~y:4) = Some 1);
  Testkit.check_true "unpinned pin row blocked"
    (Grid.is_obstacle g (Grid.node g ~layer:1 ~x:1 ~y:4));
  Testkit.check_true "layer0 blocked at pin"
    (Grid.is_obstacle g (Grid.node g ~layer:0 ~x:0 ~y:4))

let test_build_channel_rejects () =
  (try
     ignore (Netlist.Build.channel ~tracks:2 ~top:[| 1 |] ~bottom:[| 1; 2 |] ());
     Alcotest.fail "expected length mismatch rejection"
   with Invalid_argument _ -> ());
  try
    ignore (Netlist.Build.channel ~tracks:0 ~top:[| 1 |] ~bottom:[| 1 |] ());
    Alcotest.fail "expected empty channel rejection"
  with Invalid_argument _ -> ()

let test_build_switchbox_conventions () =
  let p =
    Netlist.Build.switchbox ~width:5 ~height:4
      ~top:[| 1; 0; 0; 0; 0 |]
      ~bottom:[| 0; 0; 1; 0; 0 |]
      ~left:[| 0; 2; 0; 0 |]
      ~right:[| 0; 0; 2; 0 |]
      ()
  in
  Testkit.check_int "nets" 2 (Netlist.Problem.net_count p);
  let g = Netlist.Problem.instantiate p in
  Testkit.check_true "top pin layer1"
    (Grid.owner g (Grid.node g ~layer:1 ~x:0 ~y:3) = Some 1);
  Testkit.check_true "left pin layer0"
    (Grid.owner g (Grid.node g ~layer:0 ~x:0 ~y:1) = Some 2);
  Testkit.check_true "right pin layer0"
    (Grid.owner g (Grid.node g ~layer:0 ~x:4 ~y:2) = Some 2)

let test_build_switchbox_corner_conflict () =
  try
    ignore
      (Netlist.Build.switchbox ~width:3 ~height:3
         ~top:[| 1; 0; 0 |]
         ~left:[| 0; 0; 2 |]
         ());
    Alcotest.fail "expected corner conflict rejection"
  with Invalid_argument _ -> ()

let test_build_compacts_ids () =
  let p =
    Netlist.Build.of_pins ~width:10 ~height:10
      [ (7, pin 0 0); (7, pin 1 1); (42, pin 2 2); (42, pin 3 3) ]
  in
  Testkit.check_int "two nets" 2 (Netlist.Problem.net_count p);
  Testkit.check_true "names keep original ids"
    (Netlist.Problem.find_net p "n7" <> None
    && Netlist.Problem.find_net p "n42" <> None)

(* --- parse --- *)

let test_parse_roundtrip () =
  let p =
    Netlist.Problem.make ~name:"rt" ~kind:Netlist.Problem.Switchbox ~width:9
      ~height:7
      ~obstructions:
        [
          {
            Netlist.Problem.obs_layer = Some 0;
            obs_rect = Geom.Rect.make 2 2 4 4;
          };
        ]
      ~prewires:
        [
          {
            Netlist.Problem.pre_net = 1;
            pre_cells = [ (1, 6, 5) ];
            pre_fixed = true;
          };
        ]
      [
        Netlist.Net.make ~id:1 ~name:"alpha" [ pin 0 0; pin ~layer:1 8 6 ];
        Netlist.Net.make ~id:2 ~name:"beta" [ pin 0 3; pin 8 3 ];
      ]
  in
  let text = Netlist.Parse.to_string p in
  let q = Netlist.Parse.of_string_exn text in
  Testkit.check_true "same text again" (Netlist.Parse.to_string q = text);
  Testkit.check_int "same nets" 2 (Netlist.Problem.net_count q);
  Testkit.check_true "same kind"
    (q.Netlist.Problem.kind = Netlist.Problem.Switchbox);
  Testkit.check_int "same pins" 4 (Netlist.Problem.total_pins q)

let test_parse_errors () =
  let expect_error ?line ?col text =
    match Netlist.Parse.of_string text with
    | Ok _ -> Alcotest.failf "expected parse error for %S" text
    | Error e ->
        Option.iter (fun l -> Testkit.check_int "error line" l e.Netlist.Parse.line) line;
        Option.iter (fun c -> Testkit.check_int "error column" c e.Netlist.Parse.col) col
  in
  expect_error "net a\n";
  expect_error ~line:2 ~col:1 "problem p region 4 4\npin 0 0\n";
  expect_error ~line:2 ~col:1 "problem p region 4 4\nbogus 1 2\n";
  expect_error ~line:2 "problem p region 4 4\nproblem q region 4 4\n";
  expect_error ~line:1 ~col:18 "problem p region x 4\n";
  expect_error ~line:2 "problem p region 4 4\ncell 0 1 1\n";
  expect_error ~line:3 ~col:5 "problem p region 4 4\nnet a\nnet a\n";
  (* The raising wrapper reports the same failures as exceptions. *)
  match Netlist.Parse.of_string_exn "problem p region x 4\n" with
  | _ -> Alcotest.fail "expected Parse.Error"
  | exception Netlist.Parse.Error (1, _) -> ()

let test_parse_comments_and_blanks () =
  let p =
    Netlist.Parse.of_string_exn
      "# a comment\n\nproblem p region 5 5\n\nnet a\npin 0 0\npin 1 1 1\n# end\n"
  in
  Testkit.check_int "one net" 1 (Netlist.Problem.net_count p);
  let n = Netlist.Problem.net p 1 in
  Testkit.check_true "default layer 0"
    (List.exists
       (fun (q : Netlist.Net.pin) -> q.Netlist.Net.layer = 0)
       n.Netlist.Net.pins)

let test_parse_error_source_names () =
  (* Every parse error names where its text came from: the file path for
     [load], the caller-supplied [src] for strings, "<string>" otherwise. *)
  let bad = "problem p region x 4\n" in
  (match Netlist.Parse.of_string bad with
  | Error e ->
      Testkit.check_true "default src" (e.Netlist.Parse.src = "<string>");
      Testkit.check_true "rendered with src"
        (String.length (Netlist.Parse.error_to_string e) > 9
        && String.sub (Netlist.Parse.error_to_string e) 0 9 = "<string>:")
  | Ok _ -> Alcotest.fail "expected parse error");
  (match Netlist.Parse.of_string ~src:"ticket.problem" bad with
  | Error e -> Testkit.check_true "explicit src" (e.Netlist.Parse.src = "ticket.problem")
  | Ok _ -> Alcotest.fail "expected parse error");
  let path = Filename.temp_file "netlist" ".problem" in
  let oc = open_out path in
  output_string oc bad;
  close_out oc;
  (match Netlist.Parse.load path with
  | Error e ->
      Testkit.check_true "load src is the path" (e.Netlist.Parse.src = path)
  | Ok _ -> Alcotest.fail "expected parse error");
  Sys.remove path;
  match Netlist.Parse.load path with
  | Error e ->
      Testkit.check_true "missing file src is the path"
        (e.Netlist.Parse.src = path);
      Testkit.check_int "no line for io errors" 0 e.Netlist.Parse.line
  | Ok _ -> Alcotest.fail "expected io error"

let test_parse_generated_problems () =
  List.iter
    (fun (_, p) ->
      let text = Netlist.Parse.to_string p in
      let q = Netlist.Parse.of_string_exn text in
      Testkit.check_true "roundtrip equal" (Netlist.Parse.to_string q = text))
    (Workload.Hard.all_channels () @ Workload.Hard.all_switchboxes ())

let prop_parse_never_crashes =
  Testkit.qcheck ~count:120 "parser never raises"
    QCheck2.Gen.(
      list_size (int_range 0 12)
        (oneofl
           [
             "problem p region 6 6"; "problem"; "net a"; "net b"; "pin 1 2";
             "pin 1 2 1"; "pin x"; "obstruct * 0 0 2 2"; "obstruct 9 1 1 1 1";
             "prewire a fixed"; "prewire a loose"; "cell 0 1 1"; "# note";
             ""; "garbage"; "pin 99 99";
           ]))
    (fun lines ->
      let text = String.concat "\n" lines in
      match Netlist.Parse.of_string text with Ok _ | Error _ -> true)

let prop_roundtrip_random_problems =
  Testkit.qcheck ~count:40 "random generated problems round-trip"
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 0 2))
    (fun (seed, which) ->
      let prng = Util.Prng.create seed in
      let p =
        match which with
        | 0 -> Workload.Gen.channel prng ~columns:12 ~nets:5
        | 1 -> Workload.Gen.switchbox prng ~width:10 ~height:8 ~nets:5
        | _ -> Workload.Gen.region prng ~width:10 ~height:8 ~nets:4
      in
      let text = Netlist.Parse.to_string p in
      Netlist.Parse.to_string (Netlist.Parse.of_string_exn text) = text)

(* --- analysis --- *)

let test_channel_density () =
  let p =
    Netlist.Build.channel ~tracks:3
      ~top:[| 1; 2; 0; 3 |]
      ~bottom:[| 0; 1; 2; 0 |]
      ()
  in
  Testkit.check_int "density" 2 (Netlist.Analysis.channel_density p);
  let density = Netlist.Analysis.column_density p in
  Testkit.check_int "columns" 4 (Array.length density);
  Testkit.check_int "col1 densest" 2 density.(1)

let test_cuts () =
  let p =
    Netlist.Problem.make ~name:"c" ~width:6 ~height:4
      [
        Netlist.Net.make ~id:1 ~name:"a" [ pin 0 0; pin 5 0 ];
        Netlist.Net.make ~id:2 ~name:"b" [ pin 2 1; pin 3 1 ];
        Netlist.Net.make ~id:3 ~name:"c" [ pin 1 0; pin 1 3 ];
      ]
  in
  let v = Netlist.Analysis.vertical_cuts p in
  Testkit.check_int "cut 0 crosses net1" 1 v.(0);
  Testkit.check_int "cut 2 crosses nets 1+2" 2 v.(2);
  Testkit.check_int "max vertical" 2 (Netlist.Analysis.max_vertical_cut p);
  Testkit.check_int "max horizontal" 1 (Netlist.Analysis.max_horizontal_cut p);
  Testkit.check_int "track lower bound" 2
    (Netlist.Analysis.switchbox_track_lower_bound p);
  Testkit.check_int "wl lower bound" (5 + 1 + 3)
    (Netlist.Analysis.wirelength_lower_bound p)

let test_net_span () =
  let n = Netlist.Net.make ~id:1 ~name:"s" [ pin 4 0; pin 1 2; pin 7 1 ] in
  Testkit.check_true "span"
    (Netlist.Analysis.net_span n = Some (Geom.Interval.make 1 7));
  Testkit.check_true "no span"
    (Netlist.Analysis.net_span (Netlist.Net.make ~id:2 ~name:"e" []) = None)

let () =
  Alcotest.run "netlist"
    [
      ( "net",
        [
          Alcotest.test_case "make" `Quick test_net_make;
          Alcotest.test_case "rejects bad" `Quick test_net_rejects_bad;
          Alcotest.test_case "trivial/bbox" `Quick test_net_trivial_and_bbox;
        ] );
      ( "problem",
        [
          Alcotest.test_case "basics" `Quick test_problem_basics;
          Alcotest.test_case "validation" `Quick test_problem_validation;
          Alcotest.test_case "instantiate" `Quick test_problem_instantiate;
          Alcotest.test_case "prewires" `Quick test_problem_prewires;
          Alcotest.test_case "prewire validation" `Quick test_prewire_validation;
        ] );
      ( "build",
        [
          Alcotest.test_case "channel conventions" `Quick
            test_build_channel_conventions;
          Alcotest.test_case "channel rejects" `Quick test_build_channel_rejects;
          Alcotest.test_case "switchbox conventions" `Quick
            test_build_switchbox_conventions;
          Alcotest.test_case "corner conflict" `Quick
            test_build_switchbox_corner_conflict;
          Alcotest.test_case "id compaction" `Quick test_build_compacts_ids;
        ] );
      ( "parse",
        [
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error source names" `Quick
            test_parse_error_source_names;
          Alcotest.test_case "comments/blanks" `Quick
            test_parse_comments_and_blanks;
          Alcotest.test_case "suite roundtrips" `Quick
            test_parse_generated_problems;
          prop_parse_never_crashes;
          prop_roundtrip_random_problems;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "channel density" `Quick test_channel_density;
          Alcotest.test_case "cuts" `Quick test_cuts;
          Alcotest.test_case "net span" `Quick test_net_span;
        ] );
    ]
