(* Tests for geometry primitives: points, directions, intervals,
   rectangles. *)

let interval_gen =
  QCheck2.Gen.(
    map
      (fun (a, b) -> Geom.Interval.make a b)
      (pair (int_range (-50) 50) (int_range (-50) 50)))

(* --- points --- *)

let test_point_basics () =
  let p = Geom.Point.make 2 3 and q = Geom.Point.make 5 1 in
  Testkit.check_true "equal self" (Geom.Point.equal p p);
  Testkit.check_false "distinct" (Geom.Point.equal p q);
  Testkit.check_int "manhattan" 5 (Geom.Point.manhattan p q);
  Testkit.check_int "chebyshev" 3 (Geom.Point.chebyshev p q);
  Testkit.check_true "add"
    (Geom.Point.equal (Geom.Point.add p q) (Geom.Point.make 7 4));
  Testkit.check_true "sub"
    (Geom.Point.equal (Geom.Point.sub q p) (Geom.Point.make 3 (-2)))

let test_point_adjacent () =
  let p = Geom.Point.make 0 0 in
  Testkit.check_true "east adjacent" (Geom.Point.adjacent p (Geom.Point.make 1 0));
  Testkit.check_true "north adjacent" (Geom.Point.adjacent p (Geom.Point.make 0 1));
  Testkit.check_false "self" (Geom.Point.adjacent p p);
  Testkit.check_false "diagonal" (Geom.Point.adjacent p (Geom.Point.make 1 1))

let test_point_compare_total () =
  let pts =
    [ Geom.Point.make 1 2; Geom.Point.make 0 9; Geom.Point.make 1 0 ]
  in
  let sorted = List.sort Geom.Point.compare pts in
  Testkit.check_true "sorted lexicographically"
    (sorted
    = [ Geom.Point.make 0 9; Geom.Point.make 1 0; Geom.Point.make 1 2 ])

(* --- directions --- *)

let test_dir_roundtrip () =
  List.iter
    (fun d ->
      let dx, dy = Geom.Dir.delta d in
      Testkit.check_true "of_step inverts delta"
        (Geom.Dir.of_step dx dy = Some d))
    Geom.Dir.all

let test_dir_opposite_involution () =
  List.iter
    (fun d ->
      Testkit.check_true "opposite twice"
        (Geom.Dir.opposite (Geom.Dir.opposite d) = d);
      let dx, dy = Geom.Dir.delta d in
      let ox, oy = Geom.Dir.delta (Geom.Dir.opposite d) in
      Testkit.check_true "deltas cancel" (dx + ox = 0 && dy + oy = 0))
    Geom.Dir.all

let test_dir_orientation () =
  Testkit.check_true "east horizontal" (Geom.Dir.is_horizontal Geom.Dir.East);
  Testkit.check_true "north vertical" (Geom.Dir.is_vertical Geom.Dir.North);
  List.iter
    (fun d ->
      let a, b = Geom.Dir.perpendicular d in
      Testkit.check_true "perp differs"
        (Geom.Dir.is_horizontal a <> Geom.Dir.is_horizontal d
        && Geom.Dir.is_horizontal b <> Geom.Dir.is_horizontal d))
    Geom.Dir.all

let test_dir_of_step_invalid () =
  Testkit.check_true "zero step" (Geom.Dir.of_step 0 0 = None);
  Testkit.check_true "diagonal" (Geom.Dir.of_step 1 1 = None);
  Testkit.check_true "long step" (Geom.Dir.of_step 2 0 = None)

(* --- intervals --- *)

let test_interval_make_normalises () =
  let i = Geom.Interval.make 7 3 in
  Testkit.check_int "lo" 3 i.Geom.Interval.lo;
  Testkit.check_int "hi" 7 i.Geom.Interval.hi;
  Testkit.check_int "length" 5 (Geom.Interval.length i)

let test_interval_overlap () =
  let mk = Geom.Interval.make in
  Testkit.check_true "share endpoint" (Geom.Interval.overlap (mk 0 3) (mk 3 5));
  Testkit.check_false "disjoint" (Geom.Interval.overlap (mk 0 2) (mk 3 5));
  Testkit.check_true "adjacent touches"
    (Geom.Interval.touch_or_overlap (mk 0 2) (mk 3 5));
  Testkit.check_false "gap does not touch"
    (Geom.Interval.touch_or_overlap (mk 0 2) (mk 4 5))

let test_interval_set_ops () =
  let mk = Geom.Interval.make in
  Testkit.check_true "intersection"
    (Geom.Interval.intersection (mk 0 5) (mk 3 9) = Some (mk 3 5));
  Testkit.check_true "empty intersection"
    (Geom.Interval.intersection (mk 0 2) (mk 5 9) = None);
  Testkit.check_true "hull" (Geom.Interval.hull (mk 0 2) (mk 5 9) = mk 0 9);
  Testkit.check_true "contains" (Geom.Interval.contains (mk 0 9) (mk 3 5));
  Testkit.check_false "not contains" (Geom.Interval.contains (mk 3 5) (mk 0 9));
  Testkit.check_true "shift" (Geom.Interval.shift (mk 1 2) 3 = mk 4 5)

let test_max_clique_known () =
  let mk = Geom.Interval.make in
  Testkit.check_int "empty" 0 (Geom.Interval.max_clique []);
  Testkit.check_int "single" 1 (Geom.Interval.max_clique [ mk 0 5 ]);
  Testkit.check_int "nested" 3
    (Geom.Interval.max_clique [ mk 0 9; mk 1 8; mk 2 3 ]);
  Testkit.check_int "chain" 2
    (Geom.Interval.max_clique [ mk 0 2; mk 2 4; mk 4 6 ]);
  Testkit.check_int "disjoint" 1
    (Geom.Interval.max_clique [ mk 0 1; mk 3 4; mk 6 7 ])

let prop_max_clique_vs_pointwise =
  Testkit.qcheck "max_clique equals max pointwise coverage"
    QCheck2.Gen.(list_size (int_range 0 20) interval_gen)
    (fun intervals ->
      let naive =
        let best = ref 0 in
        for x = -60 to 60 do
          let c =
            List.length (List.filter (Geom.Interval.mem x) intervals)
          in
          if c > !best then best := c
        done;
        !best
      in
      Geom.Interval.max_clique intervals = naive)

let prop_overlap_symmetric =
  Testkit.qcheck "overlap is symmetric"
    QCheck2.Gen.(pair interval_gen interval_gen)
    (fun (a, b) -> Geom.Interval.overlap a b = Geom.Interval.overlap b a)

let prop_hull_contains =
  Testkit.qcheck "hull contains both"
    QCheck2.Gen.(pair interval_gen interval_gen)
    (fun (a, b) ->
      let h = Geom.Interval.hull a b in
      Geom.Interval.contains h a && Geom.Interval.contains h b)

(* --- rectangles --- *)

let test_rect_make_normalises () =
  let r = Geom.Rect.make 5 7 2 3 in
  Testkit.check_int "x0" 2 r.Geom.Rect.x0;
  Testkit.check_int "y1" 7 r.Geom.Rect.y1;
  Testkit.check_int "width" 4 (Geom.Rect.width r);
  Testkit.check_int "height" 5 (Geom.Rect.height r);
  Testkit.check_int "area" 20 (Geom.Rect.area r);
  Testkit.check_int "half perimeter" 7 (Geom.Rect.half_perimeter r)

let test_rect_membership () =
  let r = Geom.Rect.make 0 0 3 3 in
  Testkit.check_true "corner in" (Geom.Rect.mem r 3 3);
  Testkit.check_false "outside" (Geom.Rect.mem r 4 0);
  Testkit.check_true "point in"
    (Geom.Rect.mem_point r (Geom.Point.make 1 2))

let test_rect_ops () =
  let a = Geom.Rect.make 0 0 4 4 and b = Geom.Rect.make 3 3 6 6 in
  Testkit.check_true "overlap" (Geom.Rect.overlap a b);
  Testkit.check_true "intersection"
    (Geom.Rect.intersection a b = Some (Geom.Rect.make 3 3 4 4));
  Testkit.check_true "hull" (Geom.Rect.hull a b = Geom.Rect.make 0 0 6 6);
  Testkit.check_true "no overlap"
    (Geom.Rect.intersection a (Geom.Rect.make 5 5 6 6) = None);
  Testkit.check_true "contains" (Geom.Rect.contains a (Geom.Rect.make 1 1 2 2));
  Testkit.check_true "inflate"
    (Geom.Rect.inflate a 1 = Geom.Rect.make (-1) (-1) 5 5)

let test_rect_hull_points () =
  Testkit.check_true "empty" (Geom.Rect.hull_points [] = None);
  let pts = [ Geom.Point.make 1 5; Geom.Point.make 4 0; Geom.Point.make 2 2 ] in
  Testkit.check_true "bounding box"
    (Geom.Rect.hull_points pts = Some (Geom.Rect.make 1 0 4 5))

let test_rect_iter_count () =
  let r = Geom.Rect.make 0 0 2 3 in
  let count = ref 0 in
  Geom.Rect.iter r (fun _ _ -> incr count);
  Testkit.check_int "iter visits area" (Geom.Rect.area r) !count

let rect_gen =
  QCheck2.Gen.(
    map
      (fun (a, b, c, d) -> Geom.Rect.make a b c d)
      (quad (int_range (-20) 20) (int_range (-20) 20) (int_range (-20) 20)
         (int_range (-20) 20)))

let prop_rect_intersection_subset =
  Testkit.qcheck "intersection contained in both"
    QCheck2.Gen.(pair rect_gen rect_gen)
    (fun (a, b) ->
      match Geom.Rect.intersection a b with
      | None -> not (Geom.Rect.overlap a b)
      | Some i -> Geom.Rect.contains a i && Geom.Rect.contains b i)

let prop_rect_hull_superset =
  Testkit.qcheck "hull contains both"
    QCheck2.Gen.(pair rect_gen rect_gen)
    (fun (a, b) ->
      let h = Geom.Rect.hull a b in
      Geom.Rect.contains h a && Geom.Rect.contains h b)

(* --- outlines --- *)

let test_outline_membership () =
  let o = Geom.Outline.l_shape ~width:10 ~height:8 ~notch_w:4 ~notch_h:3 in
  Testkit.check_true "inside main" (Geom.Outline.mem o 0 0);
  Testkit.check_true "inside arm" (Geom.Outline.mem o 2 7);
  Testkit.check_false "inside notch" (Geom.Outline.mem o 9 7);
  Testkit.check_false "outside box" (Geom.Outline.mem o 10 0);
  Testkit.check_true "bbox"
    (Geom.Outline.bounding_box o = Geom.Rect.make 0 0 9 7)

let test_outline_area () =
  let o = Geom.Outline.l_shape ~width:10 ~height:8 ~notch_w:4 ~notch_h:3 in
  Testkit.check_int "l-shape area" ((10 * 8) - (4 * 3)) (Geom.Outline.area o);
  (* overlapping rects count once *)
  let overlapping =
    Geom.Outline.of_rects [ Geom.Rect.make 0 0 4 4; Geom.Rect.make 2 2 6 6 ]
  in
  Testkit.check_int "union area" ((5 * 5) + (5 * 5) - (3 * 3))
    (Geom.Outline.area overlapping)

let test_outline_rejects_bad () =
  (try
     ignore (Geom.Outline.of_rects []);
     Alcotest.fail "expected empty rejection"
   with Invalid_argument _ -> ());
  try
    ignore (Geom.Outline.l_shape ~width:4 ~height:4 ~notch_w:4 ~notch_h:1);
    Alcotest.fail "expected notch rejection"
  with Invalid_argument _ -> ()

let test_outline_t_shape () =
  let o = Geom.Outline.t_shape ~width:9 ~height:7 ~stem_w:3 ~stem_h:3 in
  Testkit.check_true "bar" (Geom.Outline.mem o 0 6);
  Testkit.check_true "stem" (Geom.Outline.mem o 4 0);
  Testkit.check_false "beside stem" (Geom.Outline.mem o 0 0);
  Testkit.check_int "area" ((9 * 4) + (3 * 3)) (Geom.Outline.area o)

let test_outline_complement_partitions () =
  let o = Geom.Outline.l_shape ~width:10 ~height:8 ~notch_w:4 ~notch_h:3 in
  let within = Geom.Rect.make 0 0 9 7 in
  let comp = Geom.Outline.complement_rects ~within o in
  (* complement covers exactly the notch *)
  let covered = Hashtbl.create 16 in
  List.iter
    (fun r ->
      Geom.Rect.iter r (fun x y ->
          Testkit.check_false "disjoint" (Hashtbl.mem covered (x, y));
          Hashtbl.replace covered (x, y) ();
          Testkit.check_false "only outside cells" (Geom.Outline.mem o x y)))
    comp;
  Testkit.check_int "covers the notch" (4 * 3) (Hashtbl.length covered)

let prop_outline_complement_exact =
  Testkit.qcheck ~count:60 "complement_rects partitions the complement"
    QCheck2.Gen.(
      list_size (int_range 1 4)
        (map
           (fun (a, b, c, d) -> Geom.Rect.make (a mod 8) (b mod 8) (c mod 8) (d mod 8))
           (quad (int_range 0 7) (int_range 0 7) (int_range 0 7) (int_range 0 7))))
    (fun rects ->
      let o = Geom.Outline.of_rects rects in
      let within = Geom.Rect.make 0 0 9 9 in
      let comp = Geom.Outline.complement_rects ~within o in
      let covered = Hashtbl.create 64 in
      let ok = ref true in
      List.iter
        (fun r ->
          Geom.Rect.iter r (fun x y ->
              if Hashtbl.mem covered (x, y) then ok := false;
              Hashtbl.replace covered (x, y) ();
              if Geom.Outline.mem o x y then ok := false))
        comp;
      let expected = Geom.Rect.area within - Geom.Outline.area o
      and outside_box =
        (* outline cells outside `within` don't count *)
        let c = ref 0 in
        Geom.Rect.iter within (fun x y -> if Geom.Outline.mem o x y then incr c);
        Geom.Rect.area within - !c
      in
      ignore expected;
      !ok && Hashtbl.length covered = outside_box)

let () =
  Alcotest.run "geom"
    [
      ( "point",
        [
          Alcotest.test_case "basics" `Quick test_point_basics;
          Alcotest.test_case "adjacency" `Quick test_point_adjacent;
          Alcotest.test_case "compare total" `Quick test_point_compare_total;
        ] );
      ( "dir",
        [
          Alcotest.test_case "delta roundtrip" `Quick test_dir_roundtrip;
          Alcotest.test_case "opposite involution" `Quick test_dir_opposite_involution;
          Alcotest.test_case "orientation" `Quick test_dir_orientation;
          Alcotest.test_case "of_step invalid" `Quick test_dir_of_step_invalid;
        ] );
      ( "interval",
        [
          Alcotest.test_case "make normalises" `Quick test_interval_make_normalises;
          Alcotest.test_case "overlap" `Quick test_interval_overlap;
          Alcotest.test_case "set ops" `Quick test_interval_set_ops;
          Alcotest.test_case "max_clique known" `Quick test_max_clique_known;
          prop_max_clique_vs_pointwise;
          prop_overlap_symmetric;
          prop_hull_contains;
        ] );
      ( "rect",
        [
          Alcotest.test_case "make normalises" `Quick test_rect_make_normalises;
          Alcotest.test_case "membership" `Quick test_rect_membership;
          Alcotest.test_case "set ops" `Quick test_rect_ops;
          Alcotest.test_case "hull of points" `Quick test_rect_hull_points;
          Alcotest.test_case "iter count" `Quick test_rect_iter_count;
          prop_rect_intersection_subset;
          prop_rect_hull_superset;
        ] );
      ( "outline",
        [
          Alcotest.test_case "membership" `Quick test_outline_membership;
          Alcotest.test_case "area" `Quick test_outline_area;
          Alcotest.test_case "rejects bad" `Quick test_outline_rejects_bad;
          Alcotest.test_case "t-shape" `Quick test_outline_t_shape;
          Alcotest.test_case "complement" `Quick test_outline_complement_partitions;
          prop_outline_complement_exact;
        ] );
    ]
