(* Tests for the util library: PRNG, priority queue, union-find, vec,
   tables. *)

let test_prng_deterministic () =
  let a = Util.Prng.create 42 and b = Util.Prng.create 42 in
  for _ = 1 to 100 do
    Testkit.check_true "same stream" (Util.Prng.bits64 a = Util.Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Util.Prng.create 1 and b = Util.Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Util.Prng.bits64 a <> Util.Prng.bits64 b then differs := true
  done;
  Testkit.check_true "different seeds differ" !differs

let test_prng_copy_independent () =
  let a = Util.Prng.create 7 in
  let b = Util.Prng.copy a in
  Testkit.check_true "copy replays" (Util.Prng.bits64 a = Util.Prng.bits64 b)

let test_prng_split_independent () =
  let a = Util.Prng.create 7 in
  let c = Util.Prng.split a in
  Testkit.check_true "split stream differs"
    (Util.Prng.bits64 a <> Util.Prng.bits64 c)

let test_prng_int_bounds () =
  let g = Util.Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Util.Prng.int g 17 in
    Testkit.check_true "in range" (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Util.Prng.int_in g (-5) 5 in
    Testkit.check_true "int_in range" (v >= -5 && v <= 5)
  done

let test_prng_int_coverage () =
  let g = Util.Prng.create 5 in
  let seen = Array.make 6 false in
  for _ = 1 to 500 do
    seen.(Util.Prng.int g 6) <- true
  done;
  Array.iteri
    (fun i s -> Testkit.check_true (Printf.sprintf "value %d drawn" i) s)
    seen

let test_prng_chance_extremes () =
  let g = Util.Prng.create 11 in
  Testkit.check_false "p=0 never" (Util.Prng.chance g 0.0);
  Testkit.check_true "p=1 always" (Util.Prng.chance g 1.0)

let test_prng_float_bounds () =
  let g = Util.Prng.create 13 in
  for _ = 1 to 1000 do
    let v = Util.Prng.float g 2.5 in
    Testkit.check_true "float in [0,2.5)" (v >= 0.0 && v < 2.5)
  done

let test_shuffle_is_permutation () =
  let g = Util.Prng.create 17 in
  let original = Array.init 50 (fun i -> i) in
  let a = Array.copy original in
  Util.Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Testkit.check_true "same multiset" (sorted = original)

let test_shuffle_list_permutation () =
  let g = Util.Prng.create 19 in
  let l = List.init 30 (fun i -> i) in
  let s = Util.Prng.shuffle_list g l in
  Testkit.check_true "permutation" (List.sort Int.compare s = l)

let test_pick_member () =
  let g = Util.Prng.create 23 in
  let a = [| 3; 1; 4; 1; 5 |] in
  for _ = 1 to 50 do
    Testkit.check_true "pick from array" (Array.mem (Util.Prng.pick g a) a)
  done;
  Testkit.check_true "pick_list member"
    (List.mem (Util.Prng.pick_list g [ 9; 8; 7 ]) [ 9; 8; 7 ])

(* --- priority queue --- *)

let test_pqueue_basic () =
  let q = Util.Pqueue.create () in
  Testkit.check_true "fresh empty" (Util.Pqueue.is_empty q);
  Util.Pqueue.push q 5 50;
  Util.Pqueue.push q 1 10;
  Util.Pqueue.push q 3 30;
  Testkit.check_int "length" 3 (Util.Pqueue.length q);
  Testkit.check_true "peek min" (Util.Pqueue.peek q = (1, 10));
  Testkit.check_true "pop 1" (Util.Pqueue.pop q = (1, 10));
  Testkit.check_true "pop 3" (Util.Pqueue.pop q = (3, 30));
  Testkit.check_true "pop 5" (Util.Pqueue.pop q = (5, 50));
  Testkit.check_true "drained" (Util.Pqueue.is_empty q)

let test_pqueue_empty_raises () =
  let q = Util.Pqueue.create () in
  Alcotest.check_raises "pop on empty"
    (Invalid_argument "Pqueue.pop: empty") (fun () ->
      ignore (Util.Pqueue.pop q));
  Alcotest.check_raises "peek on empty"
    (Invalid_argument "Pqueue.peek: empty") (fun () ->
      ignore (Util.Pqueue.peek q))

let test_pqueue_opt () =
  let q = Util.Pqueue.create () in
  Testkit.check_true "pop_opt empty" (Util.Pqueue.pop_opt q = None);
  Testkit.check_true "peek_opt empty" (Util.Pqueue.peek_opt q = None);
  Util.Pqueue.push q 2 20;
  Testkit.check_true "peek_opt" (Util.Pqueue.peek_opt q = Some (2, 20));
  Testkit.check_true "pop_opt" (Util.Pqueue.pop_opt q = Some (2, 20));
  Testkit.check_true "drained" (Util.Pqueue.pop_opt q = None)

let test_pqueue_clear () =
  let q = Util.Pqueue.create () in
  Util.Pqueue.push q 1 1;
  Util.Pqueue.clear q;
  Testkit.check_true "cleared" (Util.Pqueue.is_empty q)

let test_pqueue_duplicates () =
  let q = Util.Pqueue.create () in
  List.iter (fun p -> Util.Pqueue.push q p p) [ 2; 2; 2; 1; 1 ];
  let pops = List.init 5 (fun _ -> fst (Util.Pqueue.pop q)) in
  Testkit.check_true "sorted with duplicates" (pops = [ 1; 1; 2; 2; 2 ])

let test_pqueue_growth () =
  let q = Util.Pqueue.create ~capacity:4 () in
  for i = 1000 downto 1 do
    Util.Pqueue.push q i i
  done;
  Testkit.check_int "grew" 1000 (Util.Pqueue.length q);
  let prev = ref min_int in
  for _ = 1 to 1000 do
    let p, _ = Util.Pqueue.pop q in
    Testkit.check_true "monotone" (p >= !prev);
    prev := p
  done

let prop_pqueue_heapsort =
  Testkit.qcheck "pqueue pops sorted"
    QCheck2.Gen.(list_size (int_range 0 200) (int_range (-1000) 1000))
    (fun priorities ->
      let q = Util.Pqueue.create () in
      List.iteri (fun i p -> Util.Pqueue.push q p i) priorities;
      let out =
        List.init (List.length priorities) (fun _ -> fst (Util.Pqueue.pop q))
      in
      out = List.sort Int.compare priorities)

(* --- bucket queue --- *)

let test_bucketq_basic () =
  let q = Util.Bucketq.create () in
  Testkit.check_true "fresh empty" (Util.Bucketq.is_empty q);
  Util.Bucketq.push q 5 50;
  Util.Bucketq.push q 1 10;
  Util.Bucketq.push q 3 30;
  Testkit.check_int "length" 3 (Util.Bucketq.length q);
  Testkit.check_true "peek min" (Util.Bucketq.peek q = (1, 10));
  Testkit.check_true "pop 1" (Util.Bucketq.pop q = (1, 10));
  Testkit.check_true "pop 3" (Util.Bucketq.pop q = (3, 30));
  Testkit.check_true "pop 5" (Util.Bucketq.pop q = (5, 50));
  Testkit.check_true "drained" (Util.Bucketq.is_empty q)

let test_bucketq_empty_raises () =
  let q = Util.Bucketq.create () in
  Alcotest.check_raises "pop on empty"
    (Invalid_argument "Bucketq.pop: empty") (fun () ->
      ignore (Util.Bucketq.pop q));
  Testkit.check_true "pop_opt empty" (Util.Bucketq.pop_opt q = None)

let test_bucketq_duplicates_lifo () =
  let q = Util.Bucketq.create () in
  List.iter (fun (p, x) -> Util.Bucketq.push q p x)
    [ (2, 1); (2, 2); (1, 3); (2, 4) ];
  Testkit.check_true "min first" (Util.Bucketq.pop q = (1, 3));
  (* equal priorities pop LIFO *)
  Testkit.check_true "lifo 4" (Util.Bucketq.pop q = (2, 4));
  Testkit.check_true "lifo 2" (Util.Bucketq.pop q = (2, 2));
  Testkit.check_true "lifo 1" (Util.Bucketq.pop q = (2, 1))

let test_bucketq_window_growth () =
  (* span 2 forces repeated rebucketing *)
  let q = Util.Bucketq.create ~span:2 () in
  for i = 500 downto 1 do
    Util.Bucketq.push q (i * 3) i
  done;
  Testkit.check_int "grew" 500 (Util.Bucketq.length q);
  let prev = ref min_int in
  for _ = 1 to 500 do
    let p, _ = Util.Bucketq.pop q in
    Testkit.check_true "monotone" (p >= !prev);
    prev := p
  done

let test_bucketq_sliding_window () =
  (* monotone push/pop interleaving slides the circular window far past the
     bucket count without growing it *)
  let q = Util.Bucketq.create ~span:8 () in
  let popped = ref [] in
  for p = 0 to 999 do
    Util.Bucketq.push q p p;
    if p mod 2 = 1 then popped := fst (Util.Bucketq.pop q) :: !popped
  done;
  while not (Util.Bucketq.is_empty q) do
    popped := fst (Util.Bucketq.pop q) :: !popped
  done;
  Testkit.check_true "all popped in order"
    (List.rev !popped |> List.sort Int.compare
    = List.init 1000 (fun i -> i))

let test_bucketq_negative_and_reanchor () =
  let q = Util.Bucketq.create () in
  Util.Bucketq.push q 10 1;
  Util.Bucketq.push q (-5) 2;
  Util.Bucketq.push q 0 3;
  Testkit.check_true "negative min" (Util.Bucketq.pop q = (-5, 2));
  Testkit.check_true "then zero" (Util.Bucketq.pop q = (0, 3));
  Testkit.check_true "then ten" (Util.Bucketq.pop q = (10, 1))

let test_bucketq_clear () =
  let q = Util.Bucketq.create () in
  Util.Bucketq.push q 7 7;
  Util.Bucketq.clear q;
  Testkit.check_true "cleared" (Util.Bucketq.is_empty q);
  Util.Bucketq.push q 3 3;
  Testkit.check_true "reusable" (Util.Bucketq.pop q = (3, 3))

let prop_bucketq_matches_pqueue =
  Testkit.qcheck "bucketq pops same priorities as pqueue"
    QCheck2.Gen.(list_size (int_range 0 200) (int_range (-100) 100))
    (fun priorities ->
      let bq = Util.Bucketq.create ~span:4 () in
      let pq = Util.Pqueue.create () in
      List.iteri
        (fun i p ->
          Util.Bucketq.push bq p i;
          Util.Pqueue.push pq p i)
        priorities;
      let n = List.length priorities in
      List.for_all Fun.id
        (List.init n (fun _ ->
             fst (Util.Bucketq.pop bq) = fst (Util.Pqueue.pop pq)))
      && Util.Bucketq.is_empty bq)

(* --- parallel --- *)

let test_parallel_matches_sequential () =
  let xs = List.init 200 (fun i -> i) in
  let f x = (x * x) + 1 in
  let seq = Util.Parallel.map ~jobs:1 f xs in
  let par = Util.Parallel.map ~jobs:4 f xs in
  Testkit.check_true "jobs=1 is List.map" (seq = List.map f xs);
  Testkit.check_true "jobs=4 identical" (par = seq)

let test_parallel_order_preserved () =
  let xs = [ 9; 1; 8; 2; 7 ] in
  Testkit.check_true "order kept"
    (Util.Parallel.map ~jobs:3 (fun x -> x) xs = xs)

let test_parallel_edge_sizes () =
  Testkit.check_true "empty" (Util.Parallel.map ~jobs:4 succ [] = []);
  Testkit.check_true "singleton" (Util.Parallel.map ~jobs:4 succ [ 1 ] = [ 2 ]);
  (* more jobs than items *)
  Testkit.check_true "jobs > n"
    (Util.Parallel.map ~jobs:16 succ [ 1; 2 ] = [ 2; 3 ])

let test_parallel_exception_propagates () =
  Alcotest.check_raises "worker exception re-raised" (Failure "boom")
    (fun () ->
      ignore
        (Util.Parallel.map ~jobs:4
           (fun x -> if x = 7 then failwith "boom" else x)
           (List.init 20 (fun i -> i))))

let test_parallel_multiple_failures () =
  match
    Util.Parallel.map ~jobs:4
      (fun x -> if x mod 7 = 3 then failwith (string_of_int x) else x)
      (List.init 20 (fun i -> i))
  with
  | _ -> Alcotest.fail "expected Multiple"
  | exception Util.Parallel.Multiple exns ->
      let msgs =
        List.map (function Failure m -> m | e -> Printexc.to_string e) exns
      in
      Testkit.check_true "every failure, in input order"
        (msgs = [ "3"; "10"; "17" ])

let test_parallel_jobs_clamped () =
  (* jobs <= 0 behaves as 1 instead of spawning nothing (or raising) *)
  Testkit.check_true "jobs=0" (Util.Parallel.map ~jobs:0 succ [ 1; 2 ] = [ 2; 3 ]);
  Testkit.check_true "jobs<0"
    (Util.Parallel.map ~jobs:(-3) succ [ 1; 2 ] = [ 2; 3 ])

let test_parallel_run () =
  let tasks = List.init 10 (fun i () -> i * 2) in
  Testkit.check_true "run collects results"
    (Util.Parallel.run ~jobs:4 tasks = List.init 10 (fun i -> i * 2))

(* --- union-find --- *)

let test_union_find_basic () =
  let uf = Util.Union_find.create 10 in
  Testkit.check_false "initially apart" (Util.Union_find.same uf 0 1);
  Util.Union_find.union uf 0 1;
  Util.Union_find.union uf 2 3;
  Testkit.check_true "joined" (Util.Union_find.same uf 0 1);
  Testkit.check_false "separate sets" (Util.Union_find.same uf 1 2);
  Util.Union_find.union uf 1 2;
  Testkit.check_true "transitively joined" (Util.Union_find.same uf 0 3)

let test_union_find_idempotent () =
  let uf = Util.Union_find.create 4 in
  Util.Union_find.union uf 0 1;
  Util.Union_find.union uf 0 1;
  Util.Union_find.union uf 1 0;
  Testkit.check_true "still joined" (Util.Union_find.same uf 0 1)

let test_union_find_components () =
  let uf = Util.Union_find.create 8 in
  Util.Union_find.union uf 0 1;
  Util.Union_find.union uf 2 3;
  Util.Union_find.union uf 3 4;
  Testkit.check_int "components" 2
    (Util.Union_find.count_components uf (fun i -> i <= 4));
  Testkit.check_int "all elements" 5
    (Util.Union_find.count_components uf (fun _ -> true))

let prop_union_find_equivalence =
  Testkit.qcheck "union-find matches naive closure"
    QCheck2.Gen.(
      list_size (int_range 0 40) (pair (int_range 0 14) (int_range 0 14)))
    (fun unions ->
      let uf = Util.Union_find.create 15 in
      List.iter (fun (a, b) -> Util.Union_find.union uf a b) unions;
      let repr = Array.init 15 (fun i -> i) in
      let rec naive_find i = if repr.(i) = i then i else naive_find repr.(i) in
      List.iter
        (fun (a, b) ->
          let ra = naive_find a and rb = naive_find b in
          if ra <> rb then repr.(ra) <- rb)
        unions;
      List.for_all
        (fun (a, b) ->
          Util.Union_find.same uf a b = (naive_find a = naive_find b))
        (List.concat_map
           (fun a -> List.map (fun b -> (a, b)) [ 0; 3; 7; 14 ])
           [ 0; 1; 5; 9; 14 ]))

(* --- vec --- *)

let test_vec_push_pop () =
  let v = Util.Vec.create () in
  Testkit.check_true "fresh empty" (Util.Vec.is_empty v);
  for i = 1 to 100 do
    Util.Vec.push v i
  done;
  Testkit.check_int "length" 100 (Util.Vec.length v);
  Testkit.check_int "get" 50 (Util.Vec.get v 49);
  Testkit.check_int "pop" 100 (Util.Vec.pop v);
  Testkit.check_int "length after pop" 99 (Util.Vec.length v)

let test_vec_bounds () =
  let v = Util.Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Vec: index out of bounds") (fun () ->
      ignore (Util.Vec.get v 3));
  Alcotest.check_raises "negative index"
    (Invalid_argument "Vec: index out of bounds") (fun () ->
      ignore (Util.Vec.get v (-1)))

let test_vec_conversions () =
  let l = [ 5; 6; 7; 8 ] in
  let v = Util.Vec.of_list l in
  Testkit.check_true "roundtrip list" (Util.Vec.to_list v = l);
  Testkit.check_true "to_array" (Util.Vec.to_array v = [| 5; 6; 7; 8 |]);
  Testkit.check_true "mem" (Util.Vec.mem v 7);
  Testkit.check_false "not mem" (Util.Vec.mem v 9)

let test_vec_copy_independent () =
  let v = Util.Vec.of_list [ 1; 2 ] in
  let w = Util.Vec.copy v in
  Util.Vec.push v 3;
  Testkit.check_int "copy unchanged" 2 (Util.Vec.length w);
  Util.Vec.set w 0 99;
  Testkit.check_int "original unchanged" 1 (Util.Vec.get v 0)

let test_vec_iter_exists () =
  let v = Util.Vec.of_list [ 2; 4; 6 ] in
  let sum = ref 0 in
  Util.Vec.iter (fun x -> sum := !sum + x) v;
  Testkit.check_int "iter sum" 12 !sum;
  Testkit.check_true "exists" (Util.Vec.exists (fun x -> x > 5) v);
  Testkit.check_false "not exists" (Util.Vec.exists (fun x -> x > 6) v)

(* --- table --- *)

let test_table_render () =
  let t = Util.Table.create ~headers:[ "name"; "count" ] in
  Util.Table.add_row t [ "alpha"; "1" ];
  Util.Table.add_row t [ "bee"; "22" ];
  let s = Util.Table.render t in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | header :: sep :: _ ->
      Testkit.check_true "header present" (String.length header >= 4);
      Testkit.check_true "separator dashes" (String.contains sep '-')
  | _ -> Alcotest.fail "table too short");
  Testkit.check_true "right aligned number"
    (List.exists
       (fun l -> String.length l > 6 && l.[String.length l - 1] = '1')
       lines)

let test_table_cells () =
  Testkit.check_true "int" (Util.Table.cell_int 42 = "42");
  Testkit.check_true "pct" (Util.Table.cell_pct 0.5 = "50.0%");
  Testkit.check_true "bool" (Util.Table.cell_bool true = "yes");
  Testkit.check_true "float decimals"
    (String.length (Util.Table.cell_float ~decimals:3 1.0) = 5)

let test_table_ragged_rows () =
  let t = Util.Table.create ~headers:[ "a" ] in
  Util.Table.add_row t [ "1"; "2"; "3" ];
  Util.Table.add_row t [];
  Util.Table.add_sep t;
  Testkit.check_true "renders ragged" (String.length (Util.Table.render t) > 0)

let test_table_column_extension () =
  let t = Util.Table.create ~headers:[ "a"; "b" ] in
  Util.Table.add_row t [ "1"; "2"; "3"; "4" ];
  let s = Util.Table.render t in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  (* all lines padded to the same full width *)
  match lines with
  | first :: rest ->
      List.iter
        (fun l ->
          Testkit.check_int "consistent width" (String.length first)
            (String.length l))
        rest
  | [] -> Alcotest.fail "empty table"

let test_prng_int_one () =
  let g = Util.Prng.create 1 in
  for _ = 1 to 20 do
    Testkit.check_int "bound 1 always 0" 0 (Util.Prng.int g 1)
  done

let test_prng_shuffle_empty_and_single () =
  let g = Util.Prng.create 1 in
  let empty = [||] in
  Util.Prng.shuffle g empty;
  Testkit.check_int "empty ok" 0 (Array.length empty);
  let single = [| 42 |] in
  Util.Prng.shuffle g single;
  Testkit.check_int "single untouched" 42 single.(0)

(* --- json --- *)

module J = Util.Json

let test_json_encode () =
  let v =
    J.Obj
      [
        ("s", J.String "a\"b\\c\nd");
        ("n", J.Int (-3));
        ("f", J.Float 1.5);
        ("b", J.Bool true);
        ("z", J.Null);
        ("l", J.List [ J.Int 1; J.Int 2 ]);
      ]
  in
  Testkit.check_true "compact one-line encoding"
    (J.to_string v
    = {|{"s":"a\"b\\c\nd","n":-3,"f":1.5,"b":true,"z":null,"l":[1,2]}|})

let test_json_parse () =
  let ok text expected =
    match J.of_string text with
    | Ok v -> Testkit.check_true text (v = expected)
    | Error msg -> Alcotest.failf "%s: %s" text msg
  in
  ok {| {"a": [1, 2.5, "x", null, false]} |}
    (J.Obj
       [ ("a", J.List [ J.Int 1; J.Float 2.5; J.String "x"; J.Null; J.Bool false ]) ]);
  ok {|"Aé"|} (J.String "A\xc3\xa9");
  ok "-0.5e2" (J.Float (-50.0));
  let bad text =
    match J.of_string text with
    | Ok _ -> Alcotest.failf "expected parse failure for %s" text
    | Error _ -> ()
  in
  bad "{";
  bad {|{"a":1,}|};
  bad "[1 2]";
  bad {|"unterminated|};
  bad "1 trailing";
  bad "nul"

let test_json_roundtrip () =
  let cases =
    [
      J.Null;
      J.Bool false;
      J.Int 0;
      J.Int max_int;
      J.Float 0.125;
      J.String "control \x01 and unicode \xe2\x9c\x93 and quote \"";
      J.List [];
      J.Obj [];
      J.Obj [ ("nested", J.List [ J.Obj [ ("k", J.Null) ]; J.Int 7 ]) ];
    ]
  in
  List.iter
    (fun v ->
      match J.of_string (J.to_string v) with
      | Ok v' -> Testkit.check_true (J.to_string v) (v = v')
      | Error msg -> Alcotest.failf "%s: %s" (J.to_string v) msg)
    cases

let test_json_accessors () =
  let v = J.of_string_exn {|{"i":3,"f":2.0,"s":"x","b":true,"l":[1]}|} in
  Testkit.check_true "member" (J.member "i" v = Some (J.Int 3));
  Testkit.check_true "missing member" (J.member "nope" v = None);
  Testkit.check_true "to_int" (Option.bind (J.member "i" v) J.to_int_opt = Some 3);
  Testkit.check_true "int widens to float"
    (Option.bind (J.member "i" v) J.to_float_opt = Some 3.0);
  Testkit.check_true "integral float narrows"
    (Option.bind (J.member "f" v) J.to_int_opt = Some 2);
  Testkit.check_true "to_string"
    (Option.bind (J.member "s" v) J.to_string_opt = Some "x");
  Testkit.check_true "to_bool"
    (Option.bind (J.member "b" v) J.to_bool_opt = Some true);
  Testkit.check_true "to_list"
    (Option.bind (J.member "l" v) J.to_list_opt = Some [ J.Int 1 ]);
  Testkit.check_true "wrong type" (Option.bind (J.member "s" v) J.to_int_opt = None)

let json_gen =
  (* Structure-bounded generator: depth-2 values over a small alphabet. *)
  QCheck2.Gen.(
    let scalar =
      oneof
        [
          return J.Null;
          map (fun b -> J.Bool b) bool;
          map (fun n -> J.Int n) int;
          (* Dyadic rationals only: the encoder prints %.12g, which does
             not round-trip arbitrary doubles. *)
          map
            (fun n -> J.Float (float_of_int n /. 64.0))
            (int_range (-1_000_000) 1_000_000);
          map (fun s -> J.String s) (string_size ~gen:printable (int_range 0 12));
        ]
    in
    let node self =
      oneof
        [
          scalar;
          map (fun l -> J.List l) (list_size (int_range 0 4) self);
          map
            (fun kvs ->
              (* Duplicate keys make [member] ambiguous — keep first wins
                 out of scope of the round-trip property. *)
              let seen = Hashtbl.create 4 in
              J.Obj
                (List.filter
                   (fun (k, _) ->
                     if Hashtbl.mem seen k then false
                     else (Hashtbl.add seen k (); true))
                   kvs))
            (list_size (int_range 0 4)
               (pair (string_size ~gen:printable (int_range 0 6)) self));
        ]
    in
    node (node scalar))

let prop_json_roundtrip =
  Testkit.qcheck ~count:200 "parse (encode v) = v" json_gen (fun v ->
      match J.of_string (J.to_string v) with
      | Ok v' -> v = v'
      | Error _ -> false)

(* Hardening: the decoder now reads adversarial bytes back from disk
   (WAL records, snapshots), so hostile shape must fail cleanly — an
   [Error], never a stack overflow or a silently wrong value. *)

let test_json_depth_bound () =
  let nested n = String.make n '[' ^ String.make n ']' in
  (match J.of_string (nested J.max_depth) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "depth %d must parse: %s" J.max_depth msg);
  (match J.of_string (nested (J.max_depth + 1)) with
  | Ok _ -> Alcotest.fail "past the depth bound must be rejected"
  | Error _ -> ());
  (* Way past the bound: must error out, not blow the stack.  An
     unbounded recursive-descent parser dies here. *)
  match J.of_string (String.make 1_000_000 '[') with
  | Ok _ -> Alcotest.fail "million-deep nesting must be rejected"
  | Error _ -> ()

let test_json_duplicate_keys () =
  (match J.of_string {|{"a":1,"a":2}|} with
  | Ok _ -> Alcotest.fail "duplicate key must be rejected"
  | Error msg ->
      Testkit.check_true "error names the key"
        (Testkit.contains msg "\"a\""));
  (* Duplicates nested below the top level are caught too. *)
  (match J.of_string {|{"x":[{"k":null,"k":0}]}|} with
  | Ok _ -> Alcotest.fail "nested duplicate key must be rejected"
  | Error _ -> ());
  match J.of_string {|{"a":1,"b":{"a":2}}|} with
  | Ok _ -> () (* same key in different objects is fine *)
  | Error msg -> Alcotest.failf "distinct objects may share keys: %s" msg

(* Fuzz: feed the parser mutated encodings and raw garbage; whatever
   happens, it must return, not raise. *)
let prop_json_parse_total =
  Testkit.qcheck ~count:300 "of_string never raises"
    QCheck2.Gen.(
      pair json_gen (pair (int_range 0 1_000_000) (string_size (int_range 0 40))))
    (fun (v, (cut, garbage)) ->
      let text = J.to_string v in
      let mutated =
        let cut = cut mod (String.length text + 1) in
        String.sub text 0 cut ^ garbage
      in
      List.for_all
        (fun input ->
          match J.of_string input with Ok _ | Error _ -> true)
        [ mutated; garbage; text ^ garbage ])

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy independent" `Quick test_prng_copy_independent;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int coverage" `Quick test_prng_int_coverage;
          Alcotest.test_case "chance extremes" `Quick test_prng_chance_extremes;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "shuffle_list permutation" `Quick test_shuffle_list_permutation;
          Alcotest.test_case "pick membership" `Quick test_pick_member;
          Alcotest.test_case "int bound one" `Quick test_prng_int_one;
          Alcotest.test_case "shuffle edge sizes" `Quick test_prng_shuffle_empty_and_single;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "basic order" `Quick test_pqueue_basic;
          Alcotest.test_case "empty raises" `Quick test_pqueue_empty_raises;
          Alcotest.test_case "opt variants" `Quick test_pqueue_opt;
          Alcotest.test_case "clear" `Quick test_pqueue_clear;
          Alcotest.test_case "duplicates" `Quick test_pqueue_duplicates;
          Alcotest.test_case "growth and order" `Quick test_pqueue_growth;
          prop_pqueue_heapsort;
        ] );
      ( "bucketq",
        [
          Alcotest.test_case "basic order" `Quick test_bucketq_basic;
          Alcotest.test_case "empty raises" `Quick test_bucketq_empty_raises;
          Alcotest.test_case "duplicates lifo" `Quick test_bucketq_duplicates_lifo;
          Alcotest.test_case "window growth" `Quick test_bucketq_window_growth;
          Alcotest.test_case "sliding window" `Quick test_bucketq_sliding_window;
          Alcotest.test_case "negative re-anchor" `Quick test_bucketq_negative_and_reanchor;
          Alcotest.test_case "clear" `Quick test_bucketq_clear;
          prop_bucketq_matches_pqueue;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "matches sequential" `Quick test_parallel_matches_sequential;
          Alcotest.test_case "order preserved" `Quick test_parallel_order_preserved;
          Alcotest.test_case "edge sizes" `Quick test_parallel_edge_sizes;
          Alcotest.test_case "exception propagates" `Quick test_parallel_exception_propagates;
          Alcotest.test_case "multiple failures aggregated" `Quick test_parallel_multiple_failures;
          Alcotest.test_case "jobs clamped" `Quick test_parallel_jobs_clamped;
          Alcotest.test_case "run" `Quick test_parallel_run;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "basic" `Quick test_union_find_basic;
          Alcotest.test_case "idempotent" `Quick test_union_find_idempotent;
          Alcotest.test_case "components" `Quick test_union_find_components;
          prop_union_find_equivalence;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/pop" `Quick test_vec_push_pop;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "conversions" `Quick test_vec_conversions;
          Alcotest.test_case "copy independent" `Quick test_vec_copy_independent;
          Alcotest.test_case "iter/exists" `Quick test_vec_iter_exists;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "cells" `Quick test_table_cells;
          Alcotest.test_case "ragged rows" `Quick test_table_ragged_rows;
          Alcotest.test_case "column extension" `Quick test_table_column_extension;
        ] );
      ( "json",
        [
          Alcotest.test_case "encode" `Quick test_json_encode;
          Alcotest.test_case "parse" `Quick test_json_parse;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          Alcotest.test_case "depth bound" `Quick test_json_depth_bound;
          Alcotest.test_case "duplicate keys" `Quick test_json_duplicate_keys;
          prop_json_roundtrip;
          prop_json_parse_total;
        ] );
    ]
