(* The pre-route routability predictor (lib/analyze) and the 2-layer
   pinning of the N-layer Surface generalization.

   Two families of guarantees:

   - {e equivalence}: a problem carrying an explicit [layers 2 h v]
     directive is the same problem as one carrying none — byte-identical
     printed text, byte-identical routed layouts and renders at every
     jobs/incremental setting, byte-identical snapshot bytes.  This pins
     the N-generalized grid to the historical 2-layer behaviour on all
     committed instances.

   - {e calibration}: the predictor's score ordering tracks actual
     routed overflow ordering on a generated congestion family, its
     verdict answers on the committed 1000+ net multi-layer chip
     instances, and its cost stays under 5% of a full detailed route's
     node expansions. *)

let prng seed = Util.Prng.create seed

(* Insert an explicit default-stack directive after the problem line —
   the parser must accept it and produce the very same problem. *)
let with_explicit_layers text =
  match String.index_opt text '\n' with
  | None -> text ^ "\nlayers 2 h v\n"
  | Some nl ->
      String.sub text 0 (nl + 1)
      ^ "layers 2 h v\n"
      ^ String.sub text (nl + 1) (String.length text - nl - 1)

let reparse ?(src = "test") text =
  match Netlist.Parse.of_string ~src text with
  | Ok p -> p
  | Error e -> Alcotest.fail (Netlist.Parse.error_to_string e)

(* --- equivalence: explicit [layers 2 h v] is the identity --- *)

let check_layers2_identity problem =
  let text = Netlist.Parse.to_string problem in
  Testkit.check_false "printer elides the default stack"
    (Testkit.contains text "layers");
  let explicit = reparse (with_explicit_layers text) in
  Testkit.check_true "explicit directive parses to the default stack"
    (Netlist.Problem.default_stack explicit);
  Alcotest.(check string)
    "re-printed text elides the directive" text
    (Netlist.Parse.to_string explicit);
  (* Same routed layout, same renders, at every jobs/incremental
     setting. *)
  let config jobs incremental =
    { Router.Config.default with Router.Config.jobs; incremental }
  in
  let reference = Router.Engine.route ~config:(config 1 true) problem in
  List.iter
    (fun (jobs, incremental) ->
      let c = config jobs incremental in
      let a = Router.Engine.route ~config:c problem in
      let b = Router.Engine.route ~config:c explicit in
      Testkit.check_true
        (Printf.sprintf "layouts byte-equal (jobs=%d incremental=%b)" jobs
           incremental)
        (Grid.equal a.Router.Engine.grid b.Router.Engine.grid);
      Testkit.check_true
        (Printf.sprintf "jobs/incremental invariant (jobs=%d incremental=%b)"
           jobs incremental)
        (Grid.equal reference.Router.Engine.grid a.Router.Engine.grid);
      Alcotest.(check string)
        "ascii renders byte-equal"
        (Viz.Ascii.render a.Router.Engine.grid)
        (Viz.Ascii.render b.Router.Engine.grid))
    [ (1, true); (1, false); (2, true); (2, false) ]

let test_layers2_committed () =
  List.iter
    (fun name ->
      let path = Filename.concat "../instances" (name ^ ".problem") in
      check_layers2_identity (Netlist.Parse.load_exn path))
    [ "switchbox_12x10"; "switchbox_32x26"; "chip_96x64" ]

let prop_layers2_random =
  Testkit.qcheck ~count:20 "random instances: explicit layers 2 h v is identity"
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let problem =
        Workload.Gen.routable_switchbox (prng seed) ~width:14 ~height:12
      in
      check_layers2_identity problem;
      true)

(* Snapshot bytes: a 2-layer session opened from explicit-directive text
   snapshots to the very same bytes as one opened from plain text, and
   the bytes use the historical format (pair vias, no layers line). *)
let test_layers2_snapshot_bytes () =
  let problem =
    Workload.Gen.routable_switchbox (prng 42) ~width:14 ~height:12
  in
  let snap_of problem =
    let session = Router.Session.create problem in
    (match Router.Session.try_route session with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "route failed");
    let problem, vias, frozen = Router.Session.checkpoint session in
    let path = Filename.temp_file "analyze_snap" ".walsnap" in
    Service.Snapshot.write ~fsync:false ~gen:1 ~last_rid:1 ~vias ~frozen
      problem path;
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let bytes = really_input_string ic n in
    close_in ic;
    Sys.remove path;
    bytes
  in
  let plain = snap_of (reparse (Netlist.Parse.to_string problem)) in
  let explicit =
    snap_of (reparse (with_explicit_layers (Netlist.Parse.to_string problem)))
  in
  Alcotest.(check string) "snapshot bytes identical" plain explicit;
  Testkit.check_false "no layers directive in snapshot"
    (Testkit.contains plain "layers ");
  (* A via triple would print as [x,y,l]; pair vias print as [x,y].
     Inspect every innermost bracketed group (no nested '[') and count
     its commas. *)
  Testkit.check_false "no 3-element vias in a 2-layer snapshot"
    (let rec has_triple i =
       match String.index_from_opt plain i '[' with
       | None -> false
       | Some j -> (
           match String.index_from_opt plain (j + 1) ']' with
           | None -> false
           | Some k ->
               let inner = String.sub plain (j + 1) (k - j - 1) in
               let commas = ref 0 in
               String.iter (fun c -> if c = ',' then incr commas) inner;
               if (not (String.contains inner '[')) && !commas >= 2 then true
               else has_triple (j + 1))
     in
     has_triple 0)

(* --- calibration: score ordering tracks actual routed overflow --- *)

(* Spearman rank correlation with tie-averaged ranks (Pearson on the
   rank vectors), so near-duplicate overflow values do not inject rank
   noise. *)
let spearman xs ys =
  let rank arr =
    let n = Array.length arr in
    let idx = Array.init n Fun.id in
    Array.sort (fun a b -> compare arr.(a) arr.(b)) idx;
    let r = Array.make n 0.0 in
    let i = ref 0 in
    while !i < n do
      let j = ref !i in
      while !j + 1 < n && arr.(idx.(!j + 1)) = arr.(idx.(!i)) do incr j done;
      let avg = float_of_int (!i + !j) /. 2.0 in
      for k = !i to !j do
        r.(idx.(k)) <- avg
      done;
      i := !j + 1
    done;
    r
  in
  let rx = rank xs and ry = rank ys in
  let n = Array.length xs in
  let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
  let mx = mean rx and my = mean ry in
  let num = ref 0.0 and dx = ref 0.0 and dy = ref 0.0 in
  Array.iteri
    (fun i x ->
      let a = x -. mx and b = ry.(i) -. my in
      num := !num +. (a *. b);
      dx := !dx +. (a *. a);
      dy := !dy +. (b *. b))
    rx;
  if !dx = 0.0 || !dy = 0.0 then 1.0 else !num /. sqrt (!dx *. !dy)

let actual_overflow (g : Groute.t) =
  let total = Array.fold_left ( + ) 0 g.Groute.capacity in
  let over = ref 0 in
  Array.iteri
    (fun i u ->
      if u > g.Groute.capacity.(i) then
        over := !over + (u - g.Groute.capacity.(i)))
    g.Groute.usage;
  if total = 0 then if !over > 0 then 1.0 else 0.0
  else min 1.0 (float_of_int !over /. float_of_int total)

let test_calibration_rank_correlation () =
  (* A congestion family: same region, rising net count.  The predictor
     never routes; the "actual" side is the global router's realized
     overflow after routing the tile graph. *)
  let family = [ 6; 12; 18; 24; 32; 40; 48 ] in
  let points =
    List.map
      (fun nets ->
        let problem =
          Workload.Gen.region (prng 7) ~width:28 ~height:20 ~nets
        in
        let a = Analyze.run problem in
        let actual = actual_overflow (Groute.run problem) in
        (1.0 -. a.Analyze.verdict.Analyze.score, actual))
      family
  in
  let xs = Array.of_list (List.map fst points)
  and ys = Array.of_list (List.map snd points) in
  let rho = spearman xs ys in
  if rho < 0.6 then
    Alcotest.failf
      "rank correlation %.3f < 0.6 (predicted %s vs actual %s)" rho
      (String.concat ","
         (List.map (fun (p, _) -> Printf.sprintf "%.3f" p) points))
      (String.concat ","
         (List.map (fun (_, a) -> Printf.sprintf "%.3f" a) points))

let test_calibration_committed () =
  (* All committed pre-placed instances (the macro ones need the flow's
     placer first; bench analyze covers those).  Actual overflow values
     here cluster near zero — routable instances by construction — so
     the rank assertion is deliberately coarse, plus one crisp ordering
     property: the predictor must put the two genuinely congested
     switchboxes on top. *)
  let names =
    [
      "switchbox_12x10"; "switchbox_32x26"; "switchbox_64x52";
      "switchbox_128x104"; "chip_96x64"; "chip_128x96"; "chip_320x224_l3";
      "chip_288x192_l4";
    ]
  in
  let points =
    List.map
      (fun name ->
        let problem =
          Netlist.Parse.load_exn
            (Filename.concat "../instances" (name ^ ".problem"))
        in
        let a = Analyze.run problem in
        ( name,
          a.Analyze.verdict.Analyze.predicted_overflow,
          actual_overflow (Groute.run problem) ))
      names
  in
  let rho =
    spearman
      (Array.of_list (List.map (fun (_, p, _) -> p) points))
      (Array.of_list (List.map (fun (_, _, a) -> a) points))
  in
  let show =
    String.concat "; "
      (List.map
         (fun (n, p, a) -> Printf.sprintf "%s pred %.3f actual %.3f" n p a)
         points)
  in
  if rho < 0.4 then
    Alcotest.failf "committed-instance rank correlation %.3f < 0.4 (%s)" rho
      show;
  let top k sel =
    List.filteri (fun i _ -> i < k)
      (List.sort
         (fun a b -> compare (sel b) (sel a))
         points)
    |> List.map (fun (n, _, _) -> n)
    |> List.sort compare
  in
  Alcotest.(check (list string))
    "two most congested instances predicted on top"
    (top 2 (fun (_, _, a) -> a))
    (top 2 (fun (_, p, _) -> p))

(* --- chip scale: verdict on the committed 1000+ net instances, and
   the <5% cost bound against a full detailed route --- *)

let test_chip_scale_verdict_and_cost () =
  let path = "../instances/chip_320x224_l3.problem" in
  let problem = Netlist.Parse.load_exn path in
  Testkit.check_true "1000+ nets"
    (Netlist.Problem.net_count problem >= 1000);
  Testkit.check_true "3+ layers" (problem.Netlist.Problem.layers >= 3);
  let a = Analyze.run problem in
  Testkit.check_true "score in (0,1]"
    (a.Analyze.verdict.Analyze.score > 0.0
    && a.Analyze.verdict.Analyze.score <= 1.0);
  Testkit.check_true "predictor considered every net"
    (a.Analyze.nets >= 1000);
  let config =
    {
      Router.Config.default with
      Router.Config.kernel = Maze.Search.Buckets;
      use_astar = true;
    }
  in
  let result = Testkit.route_clean ~config problem in
  let expanded = result.Router.Engine.stats.Router.Engine.expanded in
  Testkit.check_true
    (Printf.sprintf "analyze cost %d < 5%% of route expansions %d"
       a.Analyze.cost expanded)
    (a.Analyze.cost * 20 < expanded)

(* The flow triage gate: predicted-vs-actual on a placed flow, without
   perturbing the layout. *)
let test_flow_triage_gate () =
  let problem = Workload.Gen.macro (prng 3) ~width:48 ~height:40 ~nets:10 in
  let run triage = Flow.run ~seed:1 ~triage problem in
  match (run false, run true) with
  | Ok plain, Ok triaged ->
      Testkit.check_true "triage is off by default"
        (Flow.triage_report plain = None);
      (match Flow.triage_report triaged with
      | None -> Alcotest.fail "triage report missing"
      | Some r ->
          Testkit.check_true "score in (0,1]"
            (r.Flow.score > 0.0 && r.Flow.score <= 1.0);
          Testkit.check_true "overflow fractions in [0,1]"
            (r.Flow.predicted_overflow >= 0.0
            && r.Flow.predicted_overflow <= 1.0
            && r.Flow.actual_overflow >= 0.0
            && r.Flow.actual_overflow <= 1.0));
      Testkit.check_true "triage cannot change the layout"
        (Grid.equal plain.Flow.result.Router.Engine.grid
           triaged.Flow.result.Router.Engine.grid)
  | Error e, _ | _, Error e -> Alcotest.fail e

let () =
  Alcotest.run "analyze"
    [
      ( "layers2-equivalence",
        [
          Alcotest.test_case "committed instances" `Quick
            test_layers2_committed;
          prop_layers2_random;
          Alcotest.test_case "snapshot bytes" `Quick
            test_layers2_snapshot_bytes;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "rank correlation" `Quick
            test_calibration_rank_correlation;
          Alcotest.test_case "committed instances" `Quick
            test_calibration_committed;
          Alcotest.test_case "chip-scale verdict and cost" `Slow
            test_chip_scale_verdict_and_cost;
        ] );
      ( "triage",
        [
          Alcotest.test_case "flow triage gate" `Quick test_flow_triage_gate;
        ] );
    ]
